//! RMI construction: static two-level builds, adaptive initialization
//! (Algorithm 4), and the shared partition-model helpers.
//!
//! All node allocation goes through [`super::store::NodeStore`]; this
//! module owns the *shape* of the tree (how partitions recurse, merge,
//! and link into the leaf chain) but never indexes the arena directly.

use crate::config::RmiMode;
use crate::data_node::DataNode;
use crate::key::AlexKey;
use crate::model::LinearModel;

use super::store::{InnerNode, LeafNode, Node, NodeId};
use super::AlexIndex;

impl<K: AlexKey, V: Clone + Default> AlexIndex<K, V> {
    /// Build the RMI for `pairs` according to the configured mode and
    /// wire the leaf chain. Called once from `bulk_load`.
    pub(super) fn build(&mut self, pairs: &[(K, V)]) {
        self.root = match self.config.rmi {
            RmiMode::Static { num_leaf_nodes } => self.build_static(pairs, num_leaf_nodes.max(1)),
            RmiMode::Adaptive {
                max_node_keys,
                inner_fanout,
                ..
            } => self.build_adaptive(pairs, max_node_keys.max(64), inner_fanout.max(2), true),
        };
        self.link_leaves();
    }

    /// Allocate a fresh unlinked leaf bulk-loaded from `pairs`.
    pub(super) fn push_leaf(&mut self, pairs: &[(K, V)]) -> NodeId {
        self.store.push(Node::Leaf(LeafNode::new(
            DataNode::bulk_load(pairs, self.config.layout, self.config.node),
            None,
            None,
        )))
    }

    /// Two-level static RMI: a linear root over `num_leaf_nodes` data
    /// nodes.
    fn build_static(&mut self, pairs: &[(K, V)], num_leaf_nodes: usize) -> NodeId {
        let model = root_partition_model(pairs, num_leaf_nodes);
        let parts = partition_by_model(pairs, &model, num_leaf_nodes);
        let mut children = Vec::with_capacity(num_leaf_nodes);
        for range in parts {
            children.push(self.push_leaf(&pairs[range]));
        }
        self.store.push(Node::Inner(InnerNode { model, children }))
    }

    /// Adaptive RMI initialization (Algorithm 4).
    ///
    /// The root gets `ceil(n / max_node_keys)` partitions (so each holds
    /// `max_node_keys` in expectation); non-root inner nodes get
    /// `inner_fanout`. Oversized partitions recurse; undersized adjacent
    /// partitions merge into shared leaf children.
    fn build_adaptive(
        &mut self,
        pairs: &[(K, V)],
        max_node_keys: usize,
        inner_fanout: usize,
        is_root: bool,
    ) -> NodeId {
        let n = pairs.len();
        if n <= max_node_keys {
            return self.push_leaf(pairs);
        }
        let num_partitions = if is_root {
            n.div_ceil(max_node_keys).max(2)
        } else {
            inner_fanout
        };
        let model = root_partition_model(pairs, num_partitions);
        let parts = partition_by_model(pairs, &model, num_partitions);
        let mut children = Vec::with_capacity(num_partitions);
        let mut i = 0usize;
        while i < parts.len() {
            let part = parts[i].clone();
            if part.len() > max_node_keys && part.len() < n {
                let child = self.build_adaptive(&pairs[part], max_node_keys, inner_fanout, false);
                children.push(child);
                i += 1;
            } else if part.len() > max_node_keys {
                // Degenerate: the linear model routed every key to one
                // partition, so no linear refinement can make progress.
                // Accept an oversized leaf rather than recursing forever.
                let child = self.push_leaf(&pairs[part]);
                children.push(child);
                i += 1;
            } else {
                // Merge this partition with subsequent small partitions
                // until the accumulated size would exceed the bound.
                let begin = parts[i].start;
                let mut end = parts[i].end;
                let mut acc = part.len();
                let mut j = i + 1;
                while j < parts.len() && acc + parts[j].len() <= max_node_keys {
                    acc += parts[j].len();
                    end = parts[j].end;
                    j += 1;
                }
                let child = self.push_leaf(&pairs[begin..end]);
                for _ in i..j {
                    children.push(child);
                }
                i = j;
            }
        }
        self.store.push(Node::Inner(InnerNode { model, children }))
    }

    /// Wire the doubly-linked leaf chain in key order after a bulk
    /// build.
    fn link_leaves(&mut self) {
        let mut order = Vec::new();
        self.collect_leaves(self.root, &mut order);
        self.store.link_chain(&order);
    }

    /// In-order leaf ids (children slots may repeat a merged child).
    pub(super) fn collect_leaves(&self, id: NodeId, out: &mut Vec<NodeId>) {
        match self.store.node(id) {
            Node::Leaf(_) => out.push(id),
            Node::Inner(inner) => {
                let mut last: Option<NodeId> = None;
                for &c in &inner.children {
                    if last != Some(c) {
                        self.collect_leaves(c, out);
                        last = Some(c);
                    }
                }
            }
        }
    }
}

/// Fit a root model mapping keys to partition indices `[0, parts)`.
pub(super) fn root_partition_model<K: AlexKey, V>(pairs: &[(K, V)], parts: usize) -> LinearModel {
    let n = pairs.len();
    if n == 0 {
        return LinearModel::default();
    }
    LinearModel::fit(
        pairs
            .iter()
            .enumerate()
            .map(|(i, p)| (p.0.as_f64(), i as f64 * parts as f64 / n as f64)),
    )
}

/// Contiguous partition ranges of `pairs` under `model` routing
/// (`predict_clamped` into `[0, parts)`). Sorted input + clamping make
/// the ranges contiguous even if the fitted slope is degenerate.
pub(super) fn partition_by_model<K: AlexKey, V>(
    pairs: &[(K, V)],
    model: &LinearModel,
    parts: usize,
) -> Vec<core::ops::Range<usize>> {
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        // End of partition p: first pair routed past p.
        let end = if p + 1 == parts {
            pairs.len()
        } else {
            start
                + pairs[start..].partition_point(|(k, _)| model.predict_clamped(k.as_f64(), parts) <= p)
        };
        ranges.push(start..end);
        start = end;
    }
    ranges
}
