//! RMI construction: static two-level builds, adaptive initialization
//! (Algorithm 4), and the shared partition-model helpers.
//!
//! All node allocation goes through [`super::store::NodeStore`]; this
//! module owns the *shape* of the tree (how partitions recurse, merge,
//! and link into the leaf chain) but never indexes the arena directly.
//!
//! Bulk builds are exclusive-regime by definition (`&mut self`), so
//! they allocate with `push_mut` and work on either arena flavour.
//!
//! ## Cost-model caching
//!
//! Algorithm 4 fits a partition-routing model at every level of its
//! fanout recursion, and the naive formulation re-converts and re-sums
//! the same keys at each level — `O(n · depth)` float work. The build
//! instead computes one [`PrefixLsq`] cache up front (`O(n)`) and
//! threads global index *ranges* through the recursion: every
//! per-level model fit becomes an `O(1)` prefix-difference, and
//! partition boundary probing reuses the cached `f64` keys. The
//! `fig_probe` bench quantifies the resulting bulk-load speedup.

use core::ops::Range;

use crate::config::RmiMode;
use crate::data_node::DataNode;
use crate::key::AlexKey;
use crate::model::{LinearModel, PrefixLsq};

use super::store::{InnerNode, LeafNode, Node, NodeId};
use super::AlexIndex;

impl<K: AlexKey, V: Clone + Default> AlexIndex<K, V> {
    /// Build the RMI for `pairs` according to the configured mode and
    /// wire the leaf chain. Called once from `bulk_load`.
    pub(super) fn build(&mut self, pairs: &[(K, V)]) {
        let lsq = PrefixLsq::new(pairs.iter().map(|(k, _)| k.as_f64()));
        self.root = match self.config.rmi {
            RmiMode::Static { num_leaf_nodes } => {
                self.build_static(pairs, &lsq, num_leaf_nodes.max(1))
            }
            RmiMode::Adaptive {
                max_node_keys,
                inner_fanout,
                ..
            } => self.build_adaptive(
                pairs,
                &lsq,
                0..pairs.len(),
                max_node_keys.max(64),
                inner_fanout.max(2),
                true,
            ),
        };
        self.link_leaves();
    }

    /// Allocate a fresh unlinked leaf bulk-loaded from `pairs`.
    pub(super) fn push_leaf(&mut self, pairs: &[(K, V)]) -> NodeId {
        self.store.push_mut(Node::Leaf(LeafNode::new(
            DataNode::bulk_load(pairs, self.config.layout, self.config.node),
            None,
            None,
        )))
    }

    /// Two-level static RMI: a linear root over `num_leaf_nodes` data
    /// nodes.
    fn build_static(&mut self, pairs: &[(K, V)], lsq: &PrefixLsq, num_leaf_nodes: usize) -> NodeId {
        let model = lsq.fit_partitions(0..pairs.len(), num_leaf_nodes);
        let parts = partition_by_cached_model(lsq, 0..pairs.len(), &model, num_leaf_nodes);
        let mut children = Vec::with_capacity(num_leaf_nodes);
        for range in parts {
            children.push(self.push_leaf(&pairs[range]));
        }
        self.store.push_mut(Node::Inner(InnerNode { model, children }))
    }

    /// Adaptive RMI initialization (Algorithm 4) over the global index
    /// range `range` of `pairs`.
    ///
    /// The root gets `ceil(n / max_node_keys)` partitions (so each holds
    /// `max_node_keys` in expectation); non-root inner nodes get
    /// `inner_fanout`. Oversized partitions recurse; undersized adjacent
    /// partitions merge into shared leaf children.
    fn build_adaptive(
        &mut self,
        pairs: &[(K, V)],
        lsq: &PrefixLsq,
        range: Range<usize>,
        max_node_keys: usize,
        inner_fanout: usize,
        is_root: bool,
    ) -> NodeId {
        let n = range.len();
        if n <= max_node_keys {
            return self.push_leaf(&pairs[range]);
        }
        let num_partitions = if is_root {
            n.div_ceil(max_node_keys).max(2)
        } else {
            inner_fanout
        };
        let model = lsq.fit_partitions(range.clone(), num_partitions);
        let parts = partition_by_cached_model(lsq, range.clone(), &model, num_partitions);
        let mut children = Vec::with_capacity(num_partitions);
        let mut i = 0usize;
        while i < parts.len() {
            let part = parts[i].clone();
            if part.len() > max_node_keys && part.len() < n {
                let child =
                    self.build_adaptive(pairs, lsq, part, max_node_keys, inner_fanout, false);
                children.push(child);
                i += 1;
            } else if part.len() > max_node_keys {
                // Degenerate: the linear model routed every key to one
                // partition, so no linear refinement can make progress.
                // Accept an oversized leaf rather than recursing forever.
                let child = self.push_leaf(&pairs[part]);
                children.push(child);
                i += 1;
            } else {
                // Merge this partition with subsequent small partitions
                // until the accumulated size would exceed the bound.
                let begin = parts[i].start;
                let mut end = parts[i].end;
                let mut acc = part.len();
                let mut j = i + 1;
                while j < parts.len() && acc + parts[j].len() <= max_node_keys {
                    acc += parts[j].len();
                    end = parts[j].end;
                    j += 1;
                }
                let child = self.push_leaf(&pairs[begin..end]);
                for _ in i..j {
                    children.push(child);
                }
                i = j;
            }
        }
        self.store.push_mut(Node::Inner(InnerNode { model, children }))
    }

    /// Wire the doubly-linked leaf chain in key order after a bulk
    /// build.
    fn link_leaves(&mut self) {
        let mut order = Vec::new();
        self.collect_leaves(self.root, &mut order);
        self.store.link_chain(&order);
    }

    /// In-order leaf ids (children slots may repeat a merged child).
    pub(super) fn collect_leaves(&self, id: NodeId, out: &mut Vec<NodeId>) {
        match self.store.node(id) {
            Node::Leaf(_) => out.push(id),
            Node::Inner(inner) => {
                let mut last: Option<NodeId> = None;
                for &c in &inner.children {
                    if last != Some(c) {
                        self.collect_leaves(c, out);
                        last = Some(c);
                    }
                }
            }
        }
    }
}

/// Contiguous partition subranges of `range` under `model` routing,
/// probed against the cached `f64` keys (no per-key re-conversion).
/// Sorted input + clamping make the ranges contiguous even if the
/// fitted slope is degenerate.
fn partition_by_cached_model(
    lsq: &PrefixLsq,
    range: Range<usize>,
    model: &LinearModel,
    parts: usize,
) -> Vec<Range<usize>> {
    let xs = lsq.xs();
    let mut ranges = Vec::with_capacity(parts);
    let mut start = range.start;
    for p in 0..parts {
        // End of partition p: first key routed past p.
        let end = if p + 1 == parts {
            range.end
        } else {
            start
                + xs[start..range.end].partition_point(|&x| model.predict_clamped(x, parts) <= p)
        };
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Fit a root model mapping keys to partition indices `[0, parts)`.
/// The split path's one-shot equivalent of
/// [`PrefixLsq::fit_partitions`] — splits fit a single model over a
/// freshly merged pair list, so there is nothing to cache.
pub(super) fn root_partition_model<K: AlexKey, V>(pairs: &[(K, V)], parts: usize) -> LinearModel {
    let n = pairs.len();
    if n == 0 {
        return LinearModel::default();
    }
    LinearModel::fit(
        pairs
            .iter()
            .enumerate()
            .map(|(i, p)| (p.0.as_f64(), i as f64 * parts as f64 / n as f64)),
    )
}

/// Contiguous partition ranges of `pairs` under `model` routing
/// (`predict_clamped` into `[0, parts)`). Sorted input + clamping make
/// the ranges contiguous even if the fitted slope is degenerate.
pub(super) fn partition_by_model<K: AlexKey, V>(
    pairs: &[(K, V)],
    model: &LinearModel,
    parts: usize,
) -> Vec<core::ops::Range<usize>> {
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        // End of partition p: first pair routed past p.
        let end = if p + 1 == parts {
            pairs.len()
        } else {
            start
                + pairs[start..].partition_point(|(k, _)| model.predict_clamped(k.as_f64(), parts) <= p)
        };
        ranges.push(start..end);
        start = end;
    }
    ranges
}
