//! The storage layer: an epoch-protected arena of RMI nodes plus the
//! doubly-linked leaf chain.
//!
//! [`NodeStore`] is the *only* module that touches the node arena
//! directly. Everything above it — construction ([`super::build`]),
//! point/range operations ([`super::ops`]), and node splitting
//! ([`super::split`]) — goes through this narrow API, so storage
//! concerns (id allocation, publication, chain maintenance,
//! reclamation) stay in one place.
//!
//! Since the epoch rework, nodes live behind atomic pointers in an
//! [`AtomicSlots`] arena and are **never overwritten in place** on the
//! shared path: [`NodeStore::publish`] installs a replacement node at
//! the same id and *retires* the old one to the arena's epoch garbage
//! list. Two access regimes share this storage:
//!
//! - **Exclusive** (`&mut AlexIndex`): the classic single-threaded
//!   index. No concurrent writer can exist, so in-place mutation
//!   ([`NodeStore::leaf_mut`]) and unguarded reads are sound.
//! - **Shared** (`EpochAlex` / the sharded epoch read path): writers
//!   serialize on a mutex and replace nodes only via
//!   [`NodeStore::publish`]; readers pin an epoch
//!   ([`NodeStore::pin`]) and descend wait-free. The slot at a given
//!   id only ever changes to a node covering the *same key range*
//!   (copy-on-write leaf, or the routing inner node a split leaves
//!   behind), so ids held in old snapshots always remain meaningful.

use crate::data_node::DataNode;
use crate::epoch::{AtomicSlots, Collector, Guard};
use crate::key::AlexKey;
use crate::model::LinearModel;
use core::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use super::delta::DeltaBuf;

/// Node id in the arena.
pub(crate) type NodeId = u32;

/// An RMI node: inner model node or leaf data node.
///
/// Leaves are much larger than inner nodes, but each node is its own
/// heap allocation behind the arena's atomic slot, so the size
/// difference costs nothing beyond the allocation itself.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum Node<K, V> {
    Inner(InnerNode),
    Leaf(LeafNode<K, V>),
}

/// An inner node routes a key to `children[model.predict(key)]`.
/// Adjacent child slots may point to the same node (merged partitions,
/// Algorithm 4).
#[derive(Debug, Clone)]
pub(crate) struct InnerNode {
    pub model: LinearModel,
    pub children: Vec<NodeId>,
}

/// A leaf: a data node plus its pending-edit delta buffer and its
/// position in the doubly-linked leaf chain used by range scans.
///
/// The base array sits behind an `Arc` so the shared write path can
/// publish a *shallow* leaf copy — new delta, same base — without
/// cloning the whole gapped array per write (`Clone` on this type is
/// therefore cheap by design; see [`super::delta`] for the merged-view
/// contract and lifecycle). Exclusive mutation goes through
/// [`NodeStore::leaf_data_mut`], which flushes the delta and
/// `Arc::make_mut`s the base.
///
/// Chain pointers may be *stale* after a concurrent split: the
/// forward walk handles a `next` id whose slot now holds an inner node
/// by descending to its leftmost leaf (same key range, so the walk
/// stays ordered). `prev` is a write-side hint only — no read path
/// follows it.
#[derive(Debug, Clone)]
pub(crate) struct LeafNode<K, V> {
    pub data: Arc<DataNode<K, V>>,
    pub delta: DeltaBuf<K, V>,
    /// Net live-key contribution of `delta` (+pending inserts,
    /// −tombstones), maintained by the writers so `live_keys` — the
    /// per-write split check — stays O(1) instead of re-walking the
    /// buffer. Cross-checked against a recount by the debug
    /// invariants.
    pub delta_net: isize,
    pub prev: Option<NodeId>,
    pub next: Option<NodeId>,
}

impl<K, V> LeafNode<K, V> {
    /// A leaf with an empty delta buffer owning `data` uniquely.
    pub fn new(data: DataNode<K, V>, prev: Option<NodeId>, next: Option<NodeId>) -> Self {
        Self {
            data: Arc::new(data),
            delta: DeltaBuf::default(),
            delta_net: 0,
            prev,
            next,
        }
    }
}

/// Arena storage for RMI nodes: id allocation, publication, the
/// doubly-linked leaf chain, and epoch-based reclamation.
///
/// Writers (whether `&mut`-exclusive or mutex-serialized `&self`)
/// allocate with [`NodeStore::push`] and replace with
/// [`NodeStore::publish`]; ids are never reused, and a published
/// replacement always covers the same key range as its predecessor.
pub(crate) struct NodeStore<K, V> {
    slots: AtomicSlots<Node<K, V>>,
    /// First leaf in key order (entry point for full iteration). May
    /// lag behind a head split; readers normalize by descending.
    head_leaf: AtomicU32,
    /// Epoch clock for this arena's readers and retire lists.
    collector: Collector,
}

impl<K, V> NodeStore<K, V> {
    /// An empty store. The head leaf defaults to node 0; callers must
    /// push at least one leaf (or link a chain) before reading it.
    pub fn new() -> Self {
        Self {
            slots: AtomicSlots::new(),
            head_leaf: AtomicU32::new(0),
            collector: Collector::new(),
        }
    }

    /// Pin the arena's epoch. Shared readers hold the returned guard
    /// across their whole descent; see the [`crate::epoch`] docs.
    #[inline]
    pub fn pin(&self) -> Guard<'_> {
        self.collector.pin()
    }

    /// The arena's epoch collector (diagnostics).
    #[inline]
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Allocate a node, returning its id. Writers only (exclusive, or
    /// holding the index's writer mutex).
    pub fn push(&self, node: Node<K, V>) -> NodeId {
        self.slots.push(node)
    }

    /// The id the next [`NodeStore::push`] will return. With a single
    /// writer this lets splits pre-compute child ids so fresh leaves
    /// can be pushed fully linked (no post-publication fix-up).
    #[inline]
    pub fn next_id(&self) -> NodeId {
        self.slots.len()
    }

    /// Replace the node at `id`, retiring the old node to the epoch
    /// garbage list. Writers only. The single atomic publication
    /// point: a split becomes visible to readers exactly when the
    /// routing inner node lands here.
    pub fn publish(&self, id: NodeId, node: Node<K, V>) {
        self.slots.publish(id, node, &self.collector);
    }

    /// Node access (shared regime: caller must be pinned; exclusive
    /// regime: always sound).
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node<K, V> {
        self.slots.get(id)
    }

    /// The leaf at `id`.
    ///
    /// # Panics
    /// Panics if `id` refers to an inner node — only call where the
    /// caller *knows* the slot holds a leaf (exclusive regime, or the
    /// shared writer that is the only one publishing).
    #[inline]
    pub fn leaf(&self, id: NodeId) -> &LeafNode<K, V> {
        match self.node(id) {
            Node::Leaf(l) => l,
            Node::Inner(_) => unreachable!("expected leaf node"),
        }
    }

    /// The leaf at `id`, mutably (exclusive regime only — `&mut self`
    /// proves no concurrent reader or writer).
    ///
    /// # Panics
    /// Panics if `id` refers to an inner node.
    #[inline]
    pub fn leaf_mut(&mut self, id: NodeId) -> &mut LeafNode<K, V> {
        match self.slots.get_mut(id) {
            Node::Leaf(l) => l,
            Node::Inner(_) => unreachable!("expected leaf node"),
        }
    }

    /// Number of allocated node slots (ids `0..node_count()` are
    /// occupied; ids are never reused).
    #[inline]
    pub fn node_count(&self) -> NodeId {
        self.slots.len()
    }

    /// First leaf in key order. After a head split this may
    /// transiently (shared regime) name a slot that now holds an inner
    /// node; callers descend to its leftmost leaf.
    #[inline]
    pub fn head_leaf(&self) -> NodeId {
        self.head_leaf.load(Ordering::Acquire)
    }

    /// Move the chain head (writers only).
    #[inline]
    pub fn set_head(&self, id: NodeId) {
        self.head_leaf.store(id, Ordering::Release);
    }

    /// Iterate every node in the arena (allocation order).
    pub fn iter(&self) -> impl Iterator<Item = &Node<K, V>> {
        self.slots.iter()
    }

    /// Iterate every leaf in the arena (allocation order, *not* key
    /// order — use the chain for ordered traversal).
    pub fn leaves(&self) -> impl Iterator<Item = &LeafNode<K, V>> {
        self.slots.iter().filter_map(|n| match n {
            Node::Leaf(l) => Some(l),
            Node::Inner(_) => None,
        })
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.leaves().count()
    }

    /// Wire the doubly-linked leaf chain through `order` (key order)
    /// and point the head at the first entry. Exclusive regime (bulk
    /// builds).
    ///
    /// # Panics
    /// Panics if `order` is empty.
    pub fn link_chain(&mut self, order: &[NodeId]) {
        for (i, &id) in order.iter().enumerate() {
            let prev = (i > 0).then(|| order[i - 1]);
            let next = order.get(i + 1).copied();
            let leaf = self.leaf_mut(id);
            leaf.prev = prev;
            leaf.next = next;
        }
        self.set_head(*order.first().expect("at least one leaf"));
    }

    // ------------------------------------------------------------------
    // Reclamation diagnostics (surfaced by `EpochAlex::epoch_stats`)
    // ------------------------------------------------------------------

    /// Retired-but-not-yet-freed node count.
    pub fn retired(&self) -> usize {
        self.slots.retired()
    }

    /// Drive epochs forward until the retire list drains (or a pinned
    /// reader blocks progress); returns the nodes still pending.
    pub fn flush(&self) -> usize {
        self.slots.flush(&self.collector)
    }

    /// Lifetime `(retired, freed)` counters.
    pub fn reclamation_totals(&self) -> (u64, u64) {
        self.slots.reclamation_totals()
    }
}

impl<K: AlexKey, V: Clone + Default> NodeStore<K, V> {
    /// Exclusive mutable access to the *base array* of the leaf at
    /// `id`: flushes any pending delta in place first (so in-place
    /// edits and the merged view stay coherent), then unshares the
    /// base if a published snapshot still holds it.
    ///
    /// # Panics
    /// Panics if `id` refers to an inner node.
    #[inline]
    pub fn leaf_data_mut(&mut self, id: NodeId) -> &mut DataNode<K, V> {
        let leaf = self.leaf_mut(id);
        leaf.flush_delta();
        Arc::make_mut(&mut leaf.data)
    }
}

impl<K: Clone, V: Clone> Clone for NodeStore<K, V> {
    /// Deep copy for the exclusive regime (a fresh arena, fresh epoch
    /// clock, empty retire list, unshared base arrays). Must not race
    /// a writer — `Clone` on the shared wrapper is deliberately not
    /// provided.
    fn clone(&self) -> Self {
        let fresh = Self::new();
        for node in self.iter() {
            fresh.push(match node {
                Node::Inner(inner) => Node::Inner(inner.clone()),
                // Unshare the base array: the copy must never alias the
                // original's data (read counters, make_mut behaviour).
                Node::Leaf(l) => Node::Leaf(LeafNode {
                    data: Arc::new((*l.data).clone()),
                    delta: l.delta.clone(),
                    delta_net: l.delta_net,
                    prev: l.prev,
                    next: l.next,
                }),
            });
        }
        fresh.head_leaf.store(self.head_leaf(), Ordering::Relaxed);
        fresh
    }
}

impl<K, V> core::fmt::Debug for NodeStore<K, V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NodeStore")
            .field("nodes", &self.slots)
            .field("head_leaf", &self.head_leaf())
            .field("collector", &self.collector)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NodeLayout, NodeParams};

    fn leaf(pairs: &[(u64, u64)]) -> Node<u64, u64> {
        Node::Leaf(LeafNode::new(
            DataNode::bulk_load(pairs, NodeLayout::Gapped, NodeParams::default()),
            None,
            None,
        ))
    }

    #[test]
    fn push_allocates_sequential_ids() {
        let store: NodeStore<u64, u64> = NodeStore::new();
        assert_eq!(store.next_id(), 0);
        let a = store.push(leaf(&[(1, 1)]));
        let b = store.push(leaf(&[(2, 2)]));
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.next_id(), 2);
        assert_eq!(store.num_leaves(), 2);
    }

    #[test]
    fn link_chain_wires_prev_next_and_head() {
        let mut store: NodeStore<u64, u64> = NodeStore::new();
        let ids: Vec<NodeId> = (0..3).map(|i| store.push(leaf(&[(i, i)]))).collect();
        store.link_chain(&ids);
        assert_eq!(store.head_leaf(), ids[0]);
        assert_eq!(store.leaf(ids[0]).next, Some(ids[1]));
        assert_eq!(store.leaf(ids[1]).prev, Some(ids[0]));
        assert_eq!(store.leaf(ids[2]).next, None);
    }

    #[test]
    fn publish_replaces_node_and_retires_old() {
        let store: NodeStore<u64, u64> = NodeStore::new();
        let id = store.push(leaf(&[(1, 1), (2, 2)]));
        store.publish(
            id,
            Node::Inner(InnerNode {
                model: LinearModel::default(),
                children: vec![7, 8],
            }),
        );
        match store.node(id) {
            Node::Inner(inner) => assert_eq!(inner.children, vec![7, 8]),
            Node::Leaf(_) => panic!("publication must be visible immediately"),
        }
        // The replaced leaf sits on the retire list until epochs turn.
        let (retired, _) = store.reclamation_totals();
        assert_eq!(retired, 1);
        assert_eq!(store.flush(), 0, "no pinned readers: retire list drains");
        let (retired, freed) = store.reclamation_totals();
        assert_eq!(retired, freed);
    }

    #[test]
    fn pinned_reader_keeps_replaced_node_alive() {
        let store: NodeStore<u64, u64> = NodeStore::new();
        let id = store.push(leaf(&[(10, 100)]));
        let guard = store.pin();
        let snapshot = store.leaf(id);
        store.publish(id, leaf(&[(10, 200)]));
        // The pre-publication snapshot still reads its own contents.
        assert_eq!(snapshot.data.get(&10), Some(&100));
        // And the slot already serves the replacement.
        assert_eq!(store.leaf(id).data.get(&10), Some(&200));
        assert!(store.flush() > 0, "guard must block reclamation");
        drop(guard);
        assert_eq!(store.flush(), 0);
    }

    #[test]
    fn clone_is_deep_and_starts_clean() {
        let store: NodeStore<u64, u64> = NodeStore::new();
        let id = store.push(leaf(&[(1, 1)]));
        store.publish(id, leaf(&[(1, 2)]));
        let copy = store.clone();
        assert_eq!(copy.leaf(id).data.get(&1), Some(&2));
        assert_eq!(copy.retired(), 0, "clones start with an empty retire list");
        assert_eq!(copy.head_leaf(), store.head_leaf());
    }
}
