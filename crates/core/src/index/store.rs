//! The storage layer: an arena of RMI nodes plus the doubly-linked
//! leaf chain.
//!
//! [`NodeStore`] is the *only* module that touches the arena `Vec`
//! directly. Everything above it — construction ([`super::build`]),
//! point/range operations ([`super::ops`]), and node splitting
//! ([`super::split`]) — goes through this narrow API, so storage
//! concerns (id allocation, chain maintenance, in-place replacement)
//! stay in one place. That boundary is what lets the sharded front-end
//! (`alex-sharded`) treat a whole index as a sealed unit, and is the
//! seam where an epoch-based reclamation scheme would slot in later.

use crate::data_node::DataNode;
use crate::model::LinearModel;

/// Node id in the arena.
pub(crate) type NodeId = u32;

/// An RMI node: inner model node or leaf data node.
///
/// Leaves are much larger than inner nodes, but nodes live in one arena
/// `Vec` and are never moved after creation, so the size difference
/// costs only a little slack on inner-node slots.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum Node<K, V> {
    Inner(InnerNode),
    Leaf(LeafNode<K, V>),
}

/// An inner node routes a key to `children[model.predict(key)]`.
/// Adjacent child slots may point to the same node (merged partitions,
/// Algorithm 4).
#[derive(Debug, Clone)]
pub(crate) struct InnerNode {
    pub model: LinearModel,
    pub children: Vec<NodeId>,
}

/// A leaf: a data node plus its position in the doubly-linked leaf
/// chain used by range scans.
#[derive(Debug, Clone)]
pub(crate) struct LeafNode<K, V> {
    pub data: DataNode<K, V>,
    pub prev: Option<NodeId>,
    pub next: Option<NodeId>,
}

/// Arena storage for RMI nodes: id allocation, node access, and the
/// doubly-linked leaf chain. Nodes are never moved or freed once
/// pushed (splits replace a leaf with an inner node *in place*, so
/// parent child-pointers stay valid).
#[derive(Debug, Clone)]
pub(crate) struct NodeStore<K, V> {
    nodes: Vec<Node<K, V>>,
    /// First leaf in key order (entry point for full iteration).
    head_leaf: NodeId,
}

impl<K, V> NodeStore<K, V> {
    /// An empty store. The head leaf defaults to node 0; callers must
    /// push at least one leaf (or link a chain) before reading it.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            head_leaf: 0,
        }
    }

    /// Allocate a node, returning its id.
    pub fn push(&mut self, node: Node<K, V>) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(node);
        id
    }

    /// Replace the node at `id` in place (used by splits: the leaf
    /// becomes the routing inner node under the same id).
    pub fn replace(&mut self, id: NodeId, node: Node<K, V>) {
        self.nodes[id as usize] = node;
    }

    /// Immutable node access.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node<K, V> {
        &self.nodes[id as usize]
    }

    /// The leaf at `id`.
    ///
    /// # Panics
    /// Panics if `id` refers to an inner node.
    #[inline]
    pub fn leaf(&self, id: NodeId) -> &LeafNode<K, V> {
        match self.node(id) {
            Node::Leaf(l) => l,
            Node::Inner(_) => unreachable!("expected leaf node"),
        }
    }

    /// The leaf at `id`, mutably.
    ///
    /// # Panics
    /// Panics if `id` refers to an inner node.
    #[inline]
    pub fn leaf_mut(&mut self, id: NodeId) -> &mut LeafNode<K, V> {
        match &mut self.nodes[id as usize] {
            Node::Leaf(l) => l,
            Node::Inner(_) => unreachable!("expected leaf node"),
        }
    }

    /// First leaf in key order.
    #[inline]
    pub fn head_leaf(&self) -> NodeId {
        self.head_leaf
    }

    /// Iterate every node in the arena (allocation order).
    pub fn iter(&self) -> impl Iterator<Item = &Node<K, V>> {
        self.nodes.iter()
    }

    /// Iterate every leaf in the arena (allocation order, *not* key
    /// order — use the chain for ordered traversal).
    pub fn leaves(&self) -> impl Iterator<Item = &LeafNode<K, V>> {
        self.nodes.iter().filter_map(|n| match n {
            Node::Leaf(l) => Some(l),
            Node::Inner(_) => None,
        })
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.leaves().count()
    }

    /// Wire the doubly-linked leaf chain through `order` (key order)
    /// and point the head at the first entry.
    ///
    /// # Panics
    /// Panics if `order` is empty.
    pub fn link_chain(&mut self, order: &[NodeId]) {
        for (i, &id) in order.iter().enumerate() {
            let prev = (i > 0).then(|| order[i - 1]);
            let next = order.get(i + 1).copied();
            let leaf = self.leaf_mut(id);
            leaf.prev = prev;
            leaf.next = next;
        }
        self.head_leaf = *order.first().expect("at least one leaf");
    }

    /// Splice `run` (key-ordered replacement leaves) into the chain
    /// between `prev` and `next`, fixing up the neighbours and the head
    /// pointer. Used when a split replaces one leaf with several.
    ///
    /// # Panics
    /// Panics if `run` is empty.
    pub fn splice_chain(&mut self, prev: Option<NodeId>, next: Option<NodeId>, run: &[NodeId]) {
        assert!(!run.is_empty(), "cannot splice an empty run");
        for (w, &id) in run.iter().enumerate() {
            let p = if w == 0 { prev } else { Some(run[w - 1]) };
            let nx = if w == run.len() - 1 { next } else { Some(run[w + 1]) };
            let leaf = self.leaf_mut(id);
            leaf.prev = p;
            leaf.next = nx;
        }
        if let Some(p) = prev {
            self.leaf_mut(p).next = Some(run[0]);
        } else {
            self.head_leaf = run[0];
        }
        if let Some(nx) = next {
            self.leaf_mut(nx).prev = Some(*run.last().expect("run is non-empty"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NodeLayout, NodeParams};

    fn leaf(pairs: &[(u64, u64)]) -> Node<u64, u64> {
        Node::Leaf(LeafNode {
            data: DataNode::bulk_load(pairs, NodeLayout::Gapped, NodeParams::default()),
            prev: None,
            next: None,
        })
    }

    #[test]
    fn push_allocates_sequential_ids() {
        let mut store: NodeStore<u64, u64> = NodeStore::new();
        let a = store.push(leaf(&[(1, 1)]));
        let b = store.push(leaf(&[(2, 2)]));
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.num_leaves(), 2);
    }

    #[test]
    fn link_chain_wires_prev_next_and_head() {
        let mut store: NodeStore<u64, u64> = NodeStore::new();
        let ids: Vec<NodeId> = (0..3).map(|i| store.push(leaf(&[(i, i)]))).collect();
        store.link_chain(&ids);
        assert_eq!(store.head_leaf(), ids[0]);
        assert_eq!(store.leaf(ids[0]).next, Some(ids[1]));
        assert_eq!(store.leaf(ids[1]).prev, Some(ids[0]));
        assert_eq!(store.leaf(ids[2]).next, None);
    }

    #[test]
    fn splice_chain_replaces_middle_leaf() {
        let mut store: NodeStore<u64, u64> = NodeStore::new();
        let ids: Vec<NodeId> = (0..3).map(|i| store.push(leaf(&[(i, i)]))).collect();
        store.link_chain(&ids);
        let fresh: Vec<NodeId> = (10..12).map(|i| store.push(leaf(&[(i, i)]))).collect();
        store.splice_chain(Some(ids[0]), Some(ids[2]), &fresh);
        assert_eq!(store.leaf(ids[0]).next, Some(fresh[0]));
        assert_eq!(store.leaf(fresh[0]).next, Some(fresh[1]));
        assert_eq!(store.leaf(fresh[1]).next, Some(ids[2]));
        assert_eq!(store.leaf(ids[2]).prev, Some(fresh[1]));
        assert_eq!(store.head_leaf(), ids[0]);
    }

    #[test]
    fn splice_chain_at_head_moves_head() {
        let mut store: NodeStore<u64, u64> = NodeStore::new();
        let ids: Vec<NodeId> = (0..2).map(|i| store.push(leaf(&[(i, i)]))).collect();
        store.link_chain(&ids);
        let fresh = store.push(leaf(&[(9, 9)]));
        store.splice_chain(None, Some(ids[1]), &[fresh]);
        assert_eq!(store.head_leaf(), fresh);
        assert_eq!(store.leaf(ids[1]).prev, Some(fresh));
    }
}
