//! The storage layer: an arena of RMI nodes plus the doubly-linked
//! leaf chain, in one of two flavours.
//!
//! [`NodeStore`] is the *only* module that touches the node arena
//! directly. Everything above it — construction ([`super::build`]),
//! point/range operations ([`super::ops`]), and node splitting
//! ([`super::split`]) — goes through this narrow API, so storage
//! concerns (id allocation, publication, chain maintenance,
//! reclamation) stay in one place.
//!
//! Since PR 7 the arena comes in two flavours, selected at
//! construction by [`crate::config::StoreMode`]:
//!
//! - **Dense** ([`StoreMode::Dense`]): nodes packed in a plain
//!   `Vec<Node>` with non-atomic ids. Descents index the vector
//!   directly — no atomic pointer hop, no epoch bookkeeping, best
//!   cache adjacency. All mutation requires `&mut self`
//!   ([`NodeStore::push_mut`] / [`NodeStore::publish_mut`]), so the
//!   borrow checker itself proves no reader can race a writer. The
//!   shared-regime (`&self`) writer methods panic on this flavour.
//! - **Epoch** ([`StoreMode::Epoch`]): each node behind an atomic
//!   pointer in an [`AtomicSlots`] arena, **never overwritten in
//!   place** on the shared path: [`NodeStore::publish`] installs a
//!   replacement node at the same id and *retires* the old one to the
//!   arena's epoch garbage list. This is what `EpochAlex`'s lock-free
//!   pinned readers require.
//!
//! Two access regimes share this storage:
//!
//! - **Exclusive** (`&mut AlexIndex`): the classic single-threaded
//!   index. Works on either flavour; the dense flavour is the default
//!   and the fast path. In-place mutation ([`NodeStore::leaf_mut`])
//!   and unguarded reads are sound because no concurrent writer can
//!   exist.
//! - **Shared** (`EpochAlex` / the sharded epoch read path): requires
//!   the epoch flavour (enforced by [`NodeStore::ensure_epoch`] at
//!   wrap time). Writers serialize on a mutex and replace nodes only
//!   via [`NodeStore::publish`]; readers pin an epoch
//!   ([`NodeStore::pin`]) and descend wait-free. The slot at a given
//!   id only ever changes to a node covering the *same key range*
//!   (copy-on-write leaf, or the routing inner node a split leaves
//!   behind), so ids held in old snapshots always remain meaningful.
//!
//! [`NodeStore::ensure_epoch`] / [`NodeStore::ensure_dense`] convert
//! between the flavours by re-housing every node in id order (ids are
//! allocated sequentially in both, so they are preserved). Leaf bases
//! are `Arc`-shared, making the conversion `O(nodes)` shallow moves or
//! clones — never a key-array copy.
//!
//! [`StoreMode::Dense`]: crate::config::StoreMode::Dense
//! [`StoreMode::Epoch`]: crate::config::StoreMode::Epoch

use crate::config::StoreMode;
use crate::data_node::DataNode;
use crate::epoch::{AtomicSlots, Collector, Guard};
use crate::key::AlexKey;
use crate::model::LinearModel;
use core::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use super::delta::DeltaBuf;

/// Node id in the arena.
pub(crate) type NodeId = u32;

/// An RMI node: inner model node or leaf data node.
///
/// Leaves are much larger than inner nodes, but a leaf's bulk (the
/// gapped array) lives behind its own `Arc`, so the enum itself stays
/// small in both arena flavours.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum Node<K, V> {
    Inner(InnerNode),
    Leaf(LeafNode<K, V>),
}

/// An inner node routes a key to `children[model.predict(key)]`.
/// Adjacent child slots may point to the same node (merged partitions,
/// Algorithm 4).
#[derive(Debug, Clone)]
pub(crate) struct InnerNode {
    pub model: LinearModel,
    pub children: Vec<NodeId>,
}

/// A leaf: a data node plus its pending-edit delta buffer and its
/// position in the doubly-linked leaf chain used by range scans.
///
/// The base array sits behind an `Arc` so the shared write path can
/// publish a *shallow* leaf copy — new delta, same base — without
/// cloning the whole gapped array per write (`Clone` on this type is
/// therefore cheap by design; see [`super::delta`] for the merged-view
/// contract and lifecycle). Exclusive mutation goes through
/// [`NodeStore::leaf_data_mut`], which flushes the delta and
/// `Arc::make_mut`s the base.
///
/// Chain pointers may be *stale* after a concurrent split: the
/// forward walk handles a `next` id whose slot now holds an inner node
/// by descending to its leftmost leaf (same key range, so the walk
/// stays ordered). `prev` is a write-side hint only — no read path
/// follows it.
#[derive(Debug, Clone)]
pub(crate) struct LeafNode<K, V> {
    pub data: Arc<DataNode<K, V>>,
    pub delta: DeltaBuf<K, V>,
    /// Net live-key contribution of `delta` (+pending inserts,
    /// −tombstones), maintained by the writers so `live_keys` — the
    /// per-write split check — stays O(1) instead of re-walking the
    /// buffer. Cross-checked against a recount by the debug
    /// invariants.
    pub delta_net: isize,
    pub prev: Option<NodeId>,
    pub next: Option<NodeId>,
}

impl<K, V> LeafNode<K, V> {
    /// A leaf with an empty delta buffer owning `data` uniquely.
    pub fn new(data: DataNode<K, V>, prev: Option<NodeId>, next: Option<NodeId>) -> Self {
        Self {
            data: Arc::new(data),
            delta: DeltaBuf::default(),
            delta_net: 0,
            prev,
            next,
        }
    }
}

/// The two arena representations behind [`NodeStore`].
// A store holds exactly one `Arena` (never collections of them), so
// the Dense/Epoch size difference buys nothing — and boxing the epoch
// slots would put an extra pointer hop on the shared-regime read path.
#[allow(clippy::large_enum_variant)]
enum Arena<K, V> {
    /// Plain vector, exclusive regime only. Ids are indices.
    Dense(Vec<Node<K, V>>),
    /// Atomic-slot arena with its epoch clock, shared regime capable.
    Epoch {
        slots: AtomicSlots<Node<K, V>>,
        /// Epoch clock for this arena's readers and retire lists.
        collector: Collector,
    },
}

/// Arena storage for RMI nodes: id allocation, publication, the
/// doubly-linked leaf chain, and (epoch flavour) epoch-based
/// reclamation.
///
/// Exclusive writers allocate with [`NodeStore::push_mut`] and replace
/// with [`NodeStore::publish_mut`] (either flavour); shared writers —
/// mutex-serialized `&self`, epoch flavour only — use
/// [`NodeStore::push`] / [`NodeStore::publish`]. Ids are never reused,
/// and a published replacement always covers the same key range as its
/// predecessor.
pub(crate) struct NodeStore<K, V> {
    arena: Arena<K, V>,
    /// First leaf in key order (entry point for full iteration). May
    /// lag behind a head split; readers normalize by descending.
    /// Atomic in both flavours: it is a plain id, and keeping it
    /// atomic lets the shared regime move it through `&self`.
    head_leaf: AtomicU32,
}

impl<K, V> NodeStore<K, V> {
    /// An empty store of the requested flavour. The head leaf defaults
    /// to node 0; callers must push at least one leaf (or link a
    /// chain) before reading it.
    pub fn with_mode(mode: StoreMode) -> Self {
        match mode {
            StoreMode::Dense => Self::new_dense(),
            StoreMode::Epoch => Self::new_epoch(),
        }
    }

    /// An empty dense (exclusive-regime) store.
    pub fn new_dense() -> Self {
        Self {
            arena: Arena::Dense(Vec::new()),
            head_leaf: AtomicU32::new(0),
        }
    }

    /// An empty epoch (shared-regime-capable) store.
    pub fn new_epoch() -> Self {
        Self {
            arena: Arena::Epoch {
                slots: AtomicSlots::new(),
                collector: Collector::new(),
            },
            head_leaf: AtomicU32::new(0),
        }
    }

    /// Which flavour this store currently is.
    pub fn mode(&self) -> StoreMode {
        match self.arena {
            Arena::Dense(_) => StoreMode::Dense,
            Arena::Epoch { .. } => StoreMode::Epoch,
        }
    }

    /// Convert a dense arena to the epoch flavour in place (no-op when
    /// already epoch). Nodes are *moved* in id order — sequential
    /// allocation in both flavours preserves every id, so the tree,
    /// the chain, and the head stay valid. Exclusive access required
    /// (`&mut self`), which is exactly the state the `EpochAlex`
    /// constructors have.
    pub fn ensure_epoch(&mut self) {
        if let Arena::Dense(nodes) = &mut self.arena {
            let drained = core::mem::take(nodes);
            let slots = AtomicSlots::new();
            for node in drained {
                slots.push(node);
            }
            self.arena = Arena::Epoch {
                slots,
                collector: Collector::new(),
            };
        }
    }
}

impl<K: Clone, V: Clone> NodeStore<K, V> {
    /// Convert an epoch arena to the dense flavour in place (no-op
    /// when already dense). Requires exclusive access with an empty
    /// retire list intent: callers (`EpochAlex::into_inner`) drain the
    /// retire list first. Nodes are shallow-cloned in id order (leaf
    /// bases are `Arc`-shared); dropping the old arena then releases
    /// its references, so the dense store ends up owning every base
    /// uniquely again.
    pub fn ensure_dense(&mut self) {
        if let Arena::Epoch { slots, .. } = &self.arena {
            let nodes: Vec<Node<K, V>> = slots.iter().cloned().collect();
            self.arena = Arena::Dense(nodes);
        }
    }
}

impl<K, V> NodeStore<K, V> {
    /// Pin the arena's epoch. Shared readers hold the returned guard
    /// across their whole descent; see the [`crate::epoch`] docs.
    ///
    /// # Panics
    /// Panics on a dense store — the dense flavour has no epoch clock
    /// and must never be read through the shared regime.
    #[inline]
    pub fn pin(&self) -> Guard<'_> {
        match &self.arena {
            Arena::Epoch { collector, .. } => collector.pin(),
            Arena::Dense(_) => unreachable!("dense arenas have no epoch clock to pin"),
        }
    }

    /// The arena's epoch collector (diagnostics; epoch flavour only).
    ///
    /// # Panics
    /// Panics on a dense store.
    #[inline]
    pub fn collector(&self) -> &Collector {
        match &self.arena {
            Arena::Epoch { collector, .. } => collector,
            Arena::Dense(_) => unreachable!("dense arenas have no epoch collector"),
        }
    }

    /// Allocate a node, returning its id (exclusive regime; either
    /// flavour).
    pub fn push_mut(&mut self, node: Node<K, V>) -> NodeId {
        match &mut self.arena {
            Arena::Dense(nodes) => {
                let id = nodes.len() as NodeId;
                nodes.push(node);
                id
            }
            Arena::Epoch { slots, .. } => slots.push(node),
        }
    }

    /// Allocate a node through `&self` (shared regime: the caller
    /// holds the index's writer mutex; epoch flavour only).
    ///
    /// # Panics
    /// Panics on a dense store — `&self` mutation of a plain `Vec`
    /// would be unsound; the exclusive regime uses
    /// [`NodeStore::push_mut`].
    pub fn push(&self, node: Node<K, V>) -> NodeId {
        match &self.arena {
            Arena::Epoch { slots, .. } => slots.push(node),
            Arena::Dense(_) => unreachable!("shared-regime push on a dense arena"),
        }
    }

    /// The id the next push will return. With a single writer this
    /// lets splits pre-compute child ids so fresh leaves can be pushed
    /// fully linked (no post-publication fix-up).
    #[inline]
    pub fn next_id(&self) -> NodeId {
        match &self.arena {
            Arena::Dense(nodes) => nodes.len() as NodeId,
            Arena::Epoch { slots, .. } => slots.len(),
        }
    }

    /// Replace the node at `id` (exclusive regime; either flavour).
    /// Dense stores overwrite in place and drop the old node
    /// immediately — `&mut self` proves nothing can still observe it.
    /// Epoch stores retire the old node exactly like
    /// [`NodeStore::publish`], keeping the reclamation counters
    /// meaningful across regimes.
    pub fn publish_mut(&mut self, id: NodeId, node: Node<K, V>) {
        match &mut self.arena {
            Arena::Dense(nodes) => nodes[id as usize] = node,
            Arena::Epoch { slots, collector } => slots.publish(id, node, collector),
        }
    }

    /// Replace the node at `id`, retiring the old node to the epoch
    /// garbage list (shared regime: the caller holds the index's
    /// writer mutex; epoch flavour only). The single atomic
    /// publication point: a split becomes visible to readers exactly
    /// when the routing inner node lands here.
    ///
    /// # Panics
    /// Panics on a dense store.
    pub fn publish(&self, id: NodeId, node: Node<K, V>) {
        match &self.arena {
            Arena::Epoch { slots, collector } => slots.publish(id, node, collector),
            Arena::Dense(_) => unreachable!("shared-regime publish on a dense arena"),
        }
    }

    /// Node access (shared regime: caller must be pinned; exclusive
    /// regime: always sound).
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node<K, V> {
        match &self.arena {
            Arena::Dense(nodes) => &nodes[id as usize],
            Arena::Epoch { slots, .. } => slots.get(id),
        }
    }

    /// Node access, mutably (exclusive regime only).
    #[inline]
    fn node_mut(&mut self, id: NodeId) -> &mut Node<K, V> {
        match &mut self.arena {
            Arena::Dense(nodes) => &mut nodes[id as usize],
            Arena::Epoch { slots, .. } => slots.get_mut(id),
        }
    }

    /// The leaf at `id`.
    ///
    /// # Panics
    /// Panics if `id` refers to an inner node — only call where the
    /// caller *knows* the slot holds a leaf (exclusive regime, or the
    /// shared writer that is the only one publishing).
    #[inline]
    pub fn leaf(&self, id: NodeId) -> &LeafNode<K, V> {
        match self.node(id) {
            Node::Leaf(l) => l,
            Node::Inner(_) => unreachable!("expected leaf node"),
        }
    }

    /// The leaf at `id`, mutably (exclusive regime only — `&mut self`
    /// proves no concurrent reader or writer).
    ///
    /// # Panics
    /// Panics if `id` refers to an inner node.
    #[inline]
    pub fn leaf_mut(&mut self, id: NodeId) -> &mut LeafNode<K, V> {
        match self.node_mut(id) {
            Node::Leaf(l) => l,
            Node::Inner(_) => unreachable!("expected leaf node"),
        }
    }

    /// Number of allocated node slots (ids `0..node_count()` are
    /// occupied; ids are never reused).
    #[inline]
    pub fn node_count(&self) -> NodeId {
        self.next_id()
    }

    /// First leaf in key order. After a head split this may
    /// transiently (shared regime) name a slot that now holds an inner
    /// node; callers descend to its leftmost leaf.
    #[inline]
    pub fn head_leaf(&self) -> NodeId {
        self.head_leaf.load(Ordering::Acquire)
    }

    /// Move the chain head (writers only).
    #[inline]
    pub fn set_head(&self, id: NodeId) {
        self.head_leaf.store(id, Ordering::Release);
    }

    /// Iterate every node in the arena (allocation order).
    pub fn iter(&self) -> impl Iterator<Item = &Node<K, V>> {
        (0..self.node_count()).map(move |id| self.node(id))
    }

    /// Iterate every leaf in the arena (allocation order, *not* key
    /// order — use the chain for ordered traversal).
    pub fn leaves(&self) -> impl Iterator<Item = &LeafNode<K, V>> {
        self.iter().filter_map(|n| match n {
            Node::Leaf(l) => Some(l),
            Node::Inner(_) => None,
        })
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.leaves().count()
    }

    /// Wire the doubly-linked leaf chain through `order` (key order)
    /// and point the head at the first entry. Exclusive regime (bulk
    /// builds).
    ///
    /// # Panics
    /// Panics if `order` is empty.
    pub fn link_chain(&mut self, order: &[NodeId]) {
        for (i, &id) in order.iter().enumerate() {
            let prev = (i > 0).then(|| order[i - 1]);
            let next = order.get(i + 1).copied();
            let leaf = self.leaf_mut(id);
            leaf.prev = prev;
            leaf.next = next;
        }
        self.set_head(*order.first().expect("at least one leaf"));
    }

    // ------------------------------------------------------------------
    // Reclamation diagnostics (surfaced by `EpochAlex::epoch_stats`).
    // A dense arena frees replaced nodes immediately, so it reports a
    // permanently empty retire list rather than panicking — exclusive
    // tests and tooling may probe these on either flavour.
    // ------------------------------------------------------------------

    /// Retired-but-not-yet-freed node count (always 0 on dense).
    pub fn retired(&self) -> usize {
        match &self.arena {
            Arena::Dense(_) => 0,
            Arena::Epoch { slots, .. } => slots.retired(),
        }
    }

    /// Drive epochs forward until the retire list drains (or a pinned
    /// reader blocks progress); returns the nodes still pending
    /// (always 0 on dense — replacement drops are immediate).
    pub fn flush(&self) -> usize {
        match &self.arena {
            Arena::Dense(_) => 0,
            Arena::Epoch { slots, collector } => slots.flush(collector),
        }
    }

    /// Lifetime `(retired, freed)` counters (both 0 on dense).
    pub fn reclamation_totals(&self) -> (u64, u64) {
        match &self.arena {
            Arena::Dense(_) => (0, 0),
            Arena::Epoch { slots, .. } => slots.reclamation_totals(),
        }
    }
}

impl<K: AlexKey, V: Clone + Default> NodeStore<K, V> {
    /// Exclusive mutable access to the *base array* of the leaf at
    /// `id`: flushes any pending delta in place first (so in-place
    /// edits and the merged view stay coherent), then unshares the
    /// base if a published snapshot still holds it.
    ///
    /// # Panics
    /// Panics if `id` refers to an inner node.
    #[inline]
    pub fn leaf_data_mut(&mut self, id: NodeId) -> &mut DataNode<K, V> {
        let leaf = self.leaf_mut(id);
        leaf.flush_delta();
        Arc::make_mut(&mut leaf.data)
    }
}

impl<K: Clone, V: Clone> Clone for NodeStore<K, V> {
    /// Deep copy for the exclusive regime, preserving the arena
    /// flavour (a fresh arena — fresh epoch clock and empty retire
    /// list for the epoch flavour — with unshared base arrays). Must
    /// not race a writer — `Clone` on the shared wrapper is
    /// deliberately not provided.
    fn clone(&self) -> Self {
        let mut fresh = Self::with_mode(self.mode());
        for node in self.iter() {
            fresh.push_mut(match node {
                Node::Inner(inner) => Node::Inner(inner.clone()),
                // Unshare the base array: the copy must never alias the
                // original's data (read counters, make_mut behaviour).
                Node::Leaf(l) => Node::Leaf(LeafNode {
                    data: Arc::new((*l.data).clone()),
                    delta: l.delta.clone(),
                    delta_net: l.delta_net,
                    prev: l.prev,
                    next: l.next,
                }),
            });
        }
        fresh.head_leaf.store(self.head_leaf(), Ordering::Relaxed);
        fresh
    }
}

impl<K, V> core::fmt::Debug for NodeStore<K, V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut s = f.debug_struct("NodeStore");
        match &self.arena {
            Arena::Dense(nodes) => s.field("mode", &"dense").field("nodes", &nodes.len()),
            Arena::Epoch { slots, collector } => s
                .field("mode", &"epoch")
                .field("nodes", &slots)
                .field("collector", &collector),
        }
        .field("head_leaf", &self.head_leaf())
        .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NodeLayout, NodeParams};

    fn leaf(pairs: &[(u64, u64)]) -> Node<u64, u64> {
        Node::Leaf(LeafNode::new(
            DataNode::bulk_load(pairs, NodeLayout::Gapped, NodeParams::default()),
            None,
            None,
        ))
    }

    #[test]
    fn push_allocates_sequential_ids_in_both_flavours() {
        for mode in [StoreMode::Dense, StoreMode::Epoch] {
            let mut store: NodeStore<u64, u64> = NodeStore::with_mode(mode);
            assert_eq!(store.mode(), mode);
            assert_eq!(store.next_id(), 0);
            let a = store.push_mut(leaf(&[(1, 1)]));
            let b = store.push_mut(leaf(&[(2, 2)]));
            assert_eq!((a, b), (0, 1));
            assert_eq!(store.next_id(), 2);
            assert_eq!(store.num_leaves(), 2);
        }
    }

    #[test]
    fn link_chain_wires_prev_next_and_head() {
        for mode in [StoreMode::Dense, StoreMode::Epoch] {
            let mut store: NodeStore<u64, u64> = NodeStore::with_mode(mode);
            let ids: Vec<NodeId> = (0..3).map(|i| store.push_mut(leaf(&[(i, i)]))).collect();
            store.link_chain(&ids);
            assert_eq!(store.head_leaf(), ids[0]);
            assert_eq!(store.leaf(ids[0]).next, Some(ids[1]));
            assert_eq!(store.leaf(ids[1]).prev, Some(ids[0]));
            assert_eq!(store.leaf(ids[2]).next, None);
        }
    }

    #[test]
    fn publish_replaces_node_and_retires_old() {
        let store: NodeStore<u64, u64> = NodeStore::new_epoch();
        let id = store.push(leaf(&[(1, 1), (2, 2)]));
        store.publish(
            id,
            Node::Inner(InnerNode {
                model: LinearModel::default(),
                children: vec![7, 8],
            }),
        );
        match store.node(id) {
            Node::Inner(inner) => assert_eq!(inner.children, vec![7, 8]),
            Node::Leaf(_) => panic!("publication must be visible immediately"),
        }
        // The replaced leaf sits on the retire list until epochs turn.
        let (retired, _) = store.reclamation_totals();
        assert_eq!(retired, 1);
        assert_eq!(store.flush(), 0, "no pinned readers: retire list drains");
        let (retired, freed) = store.reclamation_totals();
        assert_eq!(retired, freed);
    }

    #[test]
    fn dense_publish_mut_replaces_in_place() {
        let mut store: NodeStore<u64, u64> = NodeStore::new_dense();
        let id = store.push_mut(leaf(&[(1, 1)]));
        store.publish_mut(id, leaf(&[(1, 2)]));
        assert_eq!(store.leaf(id).data.get(&1), Some(&2));
        // Dense replacement drops the old node immediately: the
        // diagnostics report a permanently clean arena.
        assert_eq!(store.retired(), 0);
        assert_eq!(store.flush(), 0);
        assert_eq!(store.reclamation_totals(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "shared-regime push on a dense arena")]
    fn dense_rejects_shared_push() {
        let store: NodeStore<u64, u64> = NodeStore::new_dense();
        store.push(leaf(&[(1, 1)]));
    }

    #[test]
    #[should_panic(expected = "dense arenas have no epoch clock")]
    fn dense_rejects_pin() {
        let store: NodeStore<u64, u64> = NodeStore::new_dense();
        let _ = store.pin();
    }

    #[test]
    fn pinned_reader_keeps_replaced_node_alive() {
        let store: NodeStore<u64, u64> = NodeStore::new_epoch();
        let id = store.push(leaf(&[(10, 100)]));
        let guard = store.pin();
        let snapshot = store.leaf(id);
        store.publish(id, leaf(&[(10, 200)]));
        // The pre-publication snapshot still reads its own contents.
        assert_eq!(snapshot.data.get(&10), Some(&100));
        // And the slot already serves the replacement.
        assert_eq!(store.leaf(id).data.get(&10), Some(&200));
        assert!(store.flush() > 0, "guard must block reclamation");
        drop(guard);
        assert_eq!(store.flush(), 0);
    }

    #[test]
    fn clone_is_deep_preserves_mode_and_starts_clean() {
        let store: NodeStore<u64, u64> = NodeStore::new_epoch();
        let id = store.push(leaf(&[(1, 1)]));
        store.publish(id, leaf(&[(1, 2)]));
        let copy = store.clone();
        assert_eq!(copy.mode(), StoreMode::Epoch);
        assert_eq!(copy.leaf(id).data.get(&1), Some(&2));
        assert_eq!(copy.retired(), 0, "clones start with an empty retire list");
        assert_eq!(copy.head_leaf(), store.head_leaf());

        let mut dense: NodeStore<u64, u64> = NodeStore::new_dense();
        let id = dense.push_mut(leaf(&[(3, 3)]));
        let copy = dense.clone();
        assert_eq!(copy.mode(), StoreMode::Dense);
        assert_eq!(copy.leaf(id).data.get(&3), Some(&3));
    }

    #[test]
    fn conversion_round_trip_preserves_ids_and_contents() {
        let mut store: NodeStore<u64, u64> = NodeStore::new_dense();
        let ids: Vec<NodeId> = (0..5u64).map(|i| store.push_mut(leaf(&[(i, i * 10)]))).collect();
        store.link_chain(&ids);
        store.ensure_epoch();
        assert_eq!(store.mode(), StoreMode::Epoch);
        // Epoch flavour serves the same tree under a pin.
        {
            let _guard = store.pin();
            for &id in &ids {
                assert_eq!(store.leaf(id).data.get(&u64::from(id)), Some(&(u64::from(id) * 10)));
            }
        }
        // Shared-regime writes now work.
        store.publish(ids[0], leaf(&[(0, 99)]));
        store.flush();
        store.ensure_dense();
        assert_eq!(store.mode(), StoreMode::Dense);
        assert_eq!(store.leaf(ids[0]).data.get(&0), Some(&99));
        assert_eq!(store.leaf(ids[1]).next, Some(ids[2]));
        assert_eq!(store.head_leaf(), ids[0]);
        assert_eq!(store.node_count(), 5);
        // The dense store owns every base uniquely again.
        for leaf in store.leaves() {
            assert_eq!(Arc::strong_count(&leaf.data), 1);
        }
    }

    #[test]
    fn ensure_is_idempotent() {
        let mut store: NodeStore<u64, u64> = NodeStore::new_dense();
        store.push_mut(leaf(&[(1, 1)]));
        store.ensure_dense();
        assert_eq!(store.mode(), StoreMode::Dense);
        store.ensure_epoch();
        store.ensure_epoch();
        assert_eq!(store.mode(), StoreMode::Epoch);
        assert_eq!(store.node_count(), 1);
    }
}
