//! Unit tests for the index module tree (construction, point/range
//! ops, splitting, batch ops, introspection).

use alex_api::InsertError;

use crate::config::AlexConfig;

use super::AlexIndex;

fn pairs(n: u64, stride: u64) -> Vec<(u64, u64)> {
    (0..n).map(|k| (k * stride, k)).collect()
}

fn all_variants() -> Vec<AlexConfig> {
    vec![
        AlexConfig::ga_srmi(32),
        AlexConfig::ga_armi().with_max_node_keys(512),
        AlexConfig::pma_srmi(32),
        AlexConfig::pma_armi().with_max_node_keys(512),
    ]
}

/// The read path must be shareable across threads (the sharded
/// front-end serves `get`/`range_from`/stats from parallel readers).
#[test]
fn index_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AlexIndex<u64, u64>>();
    assert_send_sync::<AlexIndex<f64, u64>>();
}

#[test]
fn bulk_load_and_get_all_variants() {
    let data = pairs(10_000, 3);
    for cfg in all_variants() {
        let index = AlexIndex::bulk_load(&data, cfg);
        assert_eq!(index.len(), 10_000, "{}", cfg.variant_name());
        for k in (0..10_000u64).step_by(17) {
            assert_eq!(index.get(&(k * 3)), Some(&k), "{} key {}", cfg.variant_name(), k * 3);
        }
        assert_eq!(index.get(&1), None);
        assert_eq!(index.get(&(3 * 10_000)), None);
        index.debug_assert_invariants();
    }
}

#[test]
fn armi_respects_max_node_keys_at_init() {
    let data = pairs(20_000, 1);
    let cfg = AlexConfig::ga_armi().with_max_node_keys(1000);
    let index = AlexIndex::bulk_load(&data, cfg);
    for (i, size) in index.leaf_sizes().iter().enumerate() {
        assert!(*size <= 1000, "leaf {i} has {size} keys > 1000");
    }
    assert!(index.num_data_nodes() >= 20, "uniform data should need >= 20 leaves");
    index.debug_assert_invariants();
}

#[test]
fn srmi_has_exact_leaf_count() {
    let data = pairs(5000, 7);
    let index = AlexIndex::bulk_load(&data, AlexConfig::ga_srmi(64));
    assert_eq!(index.num_data_nodes(), 64);
    assert_eq!(index.depth(), 1);
}

#[test]
fn inserts_all_variants() {
    let data = pairs(2000, 4);
    for cfg in all_variants() {
        let mut index = AlexIndex::bulk_load(&data, cfg);
        for k in 0..2000u64 {
            index.insert(k * 4 + 1, k).unwrap_or_else(|_| panic!("{} insert {}", cfg.variant_name(), k * 4 + 1));
        }
        assert_eq!(index.len(), 4000);
        for k in (0..2000u64).step_by(13) {
            assert_eq!(index.get(&(k * 4 + 1)), Some(&k), "{}", cfg.variant_name());
            assert_eq!(index.get(&(k * 4)), Some(&k));
        }
        index.debug_assert_invariants();
    }
}

#[test]
fn duplicate_insert_errors() {
    let mut index = AlexIndex::bulk_load(&pairs(100, 2), AlexConfig::ga_armi());
    assert_eq!(index.insert(10, 999), Err(InsertError::DuplicateKey));
    assert_eq!(index.get(&10), Some(&5));
    assert_eq!(index.len(), 100);
}

#[test]
fn cold_start_grows_by_splitting() {
    let cfg = AlexConfig::ga_armi().with_max_node_keys(256).with_splitting();
    let mut index: AlexIndex<u64, u64> = AlexIndex::new(cfg);
    assert!(index.is_empty());
    for k in 0..5000u64 {
        index.insert(k.wrapping_mul(2654435761) % 1_000_000, k).ok();
    }
    assert!(index.write_stats().splits > 0, "cold start must split");
    assert!(index.depth() >= 1);
    for size in index.leaf_sizes() {
        assert!(size <= 256, "leaf exceeded max after splitting: {size}");
    }
    index.debug_assert_invariants();
}

#[test]
fn splitting_handles_distribution_shift() {
    // Initialize on the low half, insert the (disjoint) high half:
    // the Fig 5b scenario.
    let low = pairs(2000, 1);
    let cfg = AlexConfig::ga_armi().with_max_node_keys(512).with_splitting();
    let mut index = AlexIndex::bulk_load(&low, cfg);
    for k in 0..4000u64 {
        index.insert(1_000_000 + k, k).unwrap();
    }
    assert_eq!(index.len(), 6000);
    assert!(index.write_stats().splits > 0);
    for k in (0..4000u64).step_by(37) {
        assert_eq!(index.get(&(1_000_000 + k)), Some(&k));
    }
    index.debug_assert_invariants();
}

#[test]
fn range_scan_within_and_across_leaves() {
    let data = pairs(10_000, 2);
    for cfg in all_variants() {
        let index = AlexIndex::bulk_load(&data, cfg);
        let got: Vec<u64> = index.range_from(&5000, 100).map(|(k, _)| *k).collect();
        let expect: Vec<u64> = (2500..2600).map(|k| k * 2).collect();
        assert_eq!(got, expect, "{}", cfg.variant_name());
    }
}

#[test]
fn range_scan_from_missing_key_and_tail() {
    let index = AlexIndex::bulk_load(&pairs(1000, 10), AlexConfig::ga_armi());
    let got: Vec<u64> = index.range_from(&15, 3).map(|(k, _)| *k).collect();
    assert_eq!(got, vec![20, 30, 40]);
    let tail: Vec<u64> = index.range_from(&9985, 100).map(|(k, _)| *k).collect();
    assert_eq!(tail, vec![9990]);
    assert_eq!(index.range_from(&1_000_000, 5).count(), 0);
}

#[test]
fn iter_covers_everything_in_order() {
    let data = pairs(5000, 3);
    for cfg in all_variants() {
        let index = AlexIndex::bulk_load(&data, cfg);
        let keys: Vec<u64> = index.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), 5000, "{}", cfg.variant_name());
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}

#[test]
fn remove_and_update() {
    let mut index = AlexIndex::bulk_load(&pairs(1000, 2), AlexConfig::ga_armi());
    assert_eq!(index.remove(&500), Some(250));
    assert_eq!(index.remove(&500), None);
    assert_eq!(index.len(), 999);
    assert_eq!(index.get(&500), None);
    assert_eq!(index.update(&600, 9999), Some(300));
    assert_eq!(index.get(&600), Some(&9999));
    assert_eq!(index.update(&601, 1), None);
    index.debug_assert_invariants();
}

#[test]
fn mass_delete_then_reinsert() {
    let mut index = AlexIndex::bulk_load(&pairs(4000, 1), AlexConfig::pma_armi().with_max_node_keys(512));
    for k in 0..3000u64 {
        assert_eq!(index.remove(&k), Some(k));
    }
    assert_eq!(index.len(), 1000);
    for k in 0..3000u64 {
        index.insert(k, k + 1).unwrap();
    }
    assert_eq!(index.len(), 4000);
    assert_eq!(index.get(&100), Some(&101));
    assert_eq!(index.get(&3500), Some(&3500));
    index.debug_assert_invariants();
}

#[test]
fn empty_index_operations() {
    let cfg = AlexConfig::ga_armi();
    let index: AlexIndex<u64, u64> = AlexIndex::new(cfg);
    assert_eq!(index.get(&5), None);
    assert_eq!(index.range_from(&0, 10).count(), 0);
    assert_eq!(index.iter().count(), 0);
    let empty_bulk: AlexIndex<u64, u64> = AlexIndex::bulk_load(&[], cfg);
    assert_eq!(empty_bulk.get(&5), None);
    assert_eq!(empty_bulk.iter().count(), 0);
}

#[test]
fn float_keys_roundtrip() {
    let data: Vec<(f64, u64)> = (0..5000u64).map(|k| (k as f64 * 0.25 - 300.0, k)).collect();
    let mut index = AlexIndex::bulk_load(&data, AlexConfig::ga_armi().with_max_node_keys(512));
    for k in (0..5000u64).step_by(43) {
        assert_eq!(index.get(&(k as f64 * 0.25 - 300.0)), Some(&k));
    }
    index.insert(-1000.5, 7).unwrap();
    assert_eq!(index.get(&(-1000.5)), Some(&7));
    let first: Vec<u64> = index.range_from(&f64::NEG_INFINITY, 2).map(|(_, v)| *v).collect();
    assert_eq!(first, vec![7, 0]);
}

#[test]
fn size_report_sane() {
    let data = pairs(50_000, 1);
    let index = AlexIndex::bulk_load(&data, AlexConfig::ga_armi().with_max_node_keys(4096));
    let r = index.size_report();
    assert!(r.index_bytes > 0);
    assert!(r.data_bytes > 50_000 * 16, "data must hold all keys+values");
    assert!(
        r.index_bytes < r.data_bytes / 10,
        "index ({}) should be far smaller than data ({})",
        r.index_bytes,
        r.data_bytes
    );
    assert_eq!(r.num_data_nodes, index.num_data_nodes());
}

#[test]
fn prediction_errors_small_on_linear_data() {
    let index = AlexIndex::bulk_load(&pairs(20_000, 5), AlexConfig::ga_armi().with_max_node_keys(2048));
    let errs = index.prediction_errors();
    assert_eq!(errs.len(), 20_000);
    let zero = errs.iter().filter(|&&e| e == 0).count();
    assert!(zero as f64 > 0.9 * errs.len() as f64, "{zero}/20000 direct placements");
}

#[test]
#[cfg(feature = "read-stats")]
fn read_stats_aggregate() {
    let index = AlexIndex::bulk_load(&pairs(1000, 3), AlexConfig::ga_srmi(8));
    for k in 0..1000u64 {
        index.get(&(k * 3));
    }
    let (lookups, comparisons, hits) = index.read_stats();
    assert_eq!(lookups, 1000);
    assert!(comparisons > 0);
    assert!(hits > 500, "linear data should yield many direct hits, got {hits}");
}

#[test]
fn sequential_inserts_pma_armi_survives() {
    // Fig 5c's adversarial pattern, small scale.
    let cfg = AlexConfig::pma_armi().with_max_node_keys(512).with_splitting();
    let mut index: AlexIndex<u64, u64> = AlexIndex::new(cfg);
    for k in 0..10_000u64 {
        index.insert(k, k).unwrap();
    }
    assert_eq!(index.len(), 10_000);
    for k in (0..10_000u64).step_by(997) {
        assert_eq!(index.get(&k), Some(&k));
    }
    index.debug_assert_invariants();
}

#[test]
fn skewed_lognormal_like_data() {
    // Heavy skew: many small keys, few huge ones.
    let mut keys: Vec<u64> = (0..5000u64).map(|i| i * i * i).collect();
    keys.dedup();
    let data: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k)).collect();
    for cfg in [AlexConfig::ga_armi().with_max_node_keys(512), AlexConfig::ga_srmi(64)] {
        let index = AlexIndex::bulk_load(&data, cfg);
        for (k, v) in data.iter().step_by(31) {
            assert_eq!(index.get(k), Some(v), "{}", cfg.variant_name());
        }
        index.debug_assert_invariants();
    }
}

#[test]
fn uniform_placement_ablation_still_correct_but_less_direct() {
    // Non-linear key spacing: with uniform spreading the linear
    // model mispredicts, while model-based placement puts each key
    // where its (imperfect) model says.
    let data: Vec<(u64, u64)> = (0..20_000u64).map(|k| (k * k / 16 + k, k)).collect();
    let model_based = AlexIndex::bulk_load(&data, AlexConfig::ga_armi().with_max_node_keys(2048));
    let uniform = AlexIndex::bulk_load(
        &data,
        AlexConfig::ga_armi().with_max_node_keys(2048).without_model_based_inserts(),
    );
    // Both answer correctly…
    for (k, v) in data.iter().step_by(97) {
        assert_eq!(uniform.get(k), Some(v));
        assert_eq!(model_based.get(k), Some(v));
    }
    // …but model-based placement has far lower prediction error
    // (the §3.2 claim this ablation isolates).
    let mb_zero = model_based.prediction_errors().iter().filter(|&&e| e == 0).count();
    let un_zero = uniform.prediction_errors().iter().filter(|&&e| e == 0).count();
    assert!(
        mb_zero > un_zero * 2,
        "model-based zero-error keys {mb_zero} should dwarf uniform's {un_zero}"
    );
}

#[test]
fn scan_from_agrees_with_range_from() {
    let data = pairs(5000, 3);
    for cfg in all_variants() {
        let mut index = AlexIndex::bulk_load(&data, cfg);
        // Punch some holes so the scan must skip gaps.
        for k in (0..5000u64).step_by(5) {
            index.remove(&(k * 3));
        }
        for start in [0u64, 1, 299, 7500, 14999, 20000] {
            for limit in [0usize, 1, 10, 100] {
                let via_iter: Vec<u64> = index.range_from(&start, limit).map(|(k, _)| *k).collect();
                let mut via_scan = Vec::new();
                let visited = index.scan_from(&start, limit, |k, _| via_scan.push(*k));
                assert_eq!(via_scan, via_iter, "{} start={start} limit={limit}", cfg.variant_name());
                assert_eq!(visited, via_iter.len());
            }
        }
    }
}

#[test]
fn contains_key() {
    let index = AlexIndex::bulk_load(&pairs(100, 2), AlexConfig::ga_armi());
    assert!(index.contains_key(&0));
    assert!(index.contains_key(&198));
    assert!(!index.contains_key(&199));
}

#[test]
fn pma_layout_with_static_rmi_inserts() {
    let mut index = AlexIndex::bulk_load(&pairs(2000, 2), AlexConfig::pma_srmi(16));
    for k in 0..2000u64 {
        index.insert(k * 2 + 1, k).unwrap();
    }
    assert_eq!(index.len(), 4000);
    let keys: Vec<u64> = index.iter().map(|(k, _)| *k).collect();
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
    index.debug_assert_invariants();
}

// ----------------------------------------------------------------------
// Sorted-batch operations
// ----------------------------------------------------------------------

#[test]
fn get_many_agrees_with_get_all_variants() {
    let data = pairs(10_000, 3);
    for cfg in all_variants() {
        let index = AlexIndex::bulk_load(&data, cfg);
        // Mix of present keys, misses between keys, and out-of-range
        // probes, sorted ascending (with duplicates).
        let mut queries: Vec<u64> = (0..12_000u64).map(|k| k * 5 / 2).collect();
        queries.push(queries[queries.len() - 1]);
        queries.sort_unstable();
        let batch = index.get_many(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, got) in queries.iter().zip(&batch) {
            assert_eq!(*got, index.get(q), "{} key {q}", cfg.variant_name());
        }
    }
}

#[test]
fn get_many_after_removals_skips_emptied_leaves() {
    // Empty an entire leaf's worth of keys so the run cache must not
    // claim ownership through an empty leaf.
    let data = pairs(8000, 1);
    let mut index = AlexIndex::bulk_load(&data, AlexConfig::ga_armi().with_max_node_keys(256));
    for k in 2000..4000u64 {
        index.remove(&k);
    }
    let queries: Vec<u64> = (0..8000).collect();
    let batch = index.get_many(&queries);
    for (q, got) in queries.iter().zip(&batch) {
        let expect = if (2000..4000).contains(q) { None } else { Some(q) };
        assert_eq!(got.copied(), expect.copied(), "key {q}");
    }
}

#[test]
fn get_many_on_empty_index() {
    let index: AlexIndex<u64, u64> = AlexIndex::new(AlexConfig::ga_armi());
    assert_eq!(index.get_many(&[1, 2, 3]), vec![None, None, None]);
    assert_eq!(index.get_many(&[]), Vec::<Option<&u64>>::new());
}

#[test]
fn bulk_insert_agrees_with_per_key_insert() {
    let init = pairs(4000, 4);
    for cfg in all_variants() {
        let mut batch_index = AlexIndex::bulk_load(&init, cfg);
        let mut serial_index = AlexIndex::bulk_load(&init, cfg);
        // Odd keys interleave with the loaded evens; every 7th repeats
        // an existing key (duplicate).
        let incoming: Vec<(u64, u64)> = (0..4000u64)
            .map(|k| if k % 7 == 0 { (k * 4, k) } else { (k * 4 + 1, k) })
            .collect();
        let mut sorted = incoming.clone();
        sorted.sort_by_key(|p| p.0);

        let inserted = batch_index.bulk_insert(&sorted).unwrap();
        let mut serial_inserted = 0;
        for (k, v) in &sorted {
            if serial_index.insert(*k, *v).is_ok() {
                serial_inserted += 1;
            }
        }
        assert_eq!(inserted, serial_inserted, "{}", cfg.variant_name());
        assert_eq!(batch_index.len(), serial_index.len());
        let batch_pairs: Vec<(u64, u64)> = batch_index.iter().map(|(k, v)| (*k, *v)).collect();
        let serial_pairs: Vec<(u64, u64)> = serial_index.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(batch_pairs, serial_pairs, "{}", cfg.variant_name());
        batch_index.debug_assert_invariants();
    }
}

#[test]
fn bulk_insert_with_splitting_matches_serial() {
    let cfg = AlexConfig::ga_armi().with_max_node_keys(128).with_splitting();
    let init = pairs(1000, 8);
    let mut batch_index = AlexIndex::bulk_load(&init, cfg);
    let mut serial_index = AlexIndex::bulk_load(&init, cfg);
    let incoming: Vec<(u64, u64)> = (0..6000u64).map(|k| (k * 8 + 3, k)).collect();
    let inserted = batch_index.bulk_insert(&incoming).unwrap();
    for (k, v) in &incoming {
        serial_index.insert(*k, *v).unwrap();
    }
    assert_eq!(inserted, incoming.len());
    assert_eq!(batch_index.len(), serial_index.len());
    assert!(batch_index.write_stats().splits > 0, "small leaves must split");
    let batch_keys: Vec<u64> = batch_index.iter().map(|(k, _)| *k).collect();
    let serial_keys: Vec<u64> = serial_index.iter().map(|(k, _)| *k).collect();
    assert_eq!(batch_keys, serial_keys);
    batch_index.debug_assert_invariants();
}

#[test]
fn dense_high_range_keys_stay_correct_via_degradation_fallback() {
    // Past 2^53 the `u64 → f64` projection is locally constant (ulp is
    // 2048 near 2^63), so leaf models cannot separate dense keys. The
    // per-leaf degradation guard must engage and keep every operation
    // correct, with no quadratic placement blowup.
    let base = u64::MAX - 10_000_000;
    let data: Vec<(u64, u64)> = (0..30_000u64).map(|i| (base + i * 250, i)).collect();
    for cfg in [AlexConfig::ga_armi().with_max_node_keys(2048), AlexConfig::pma_armi().with_max_node_keys(2048)] {
        let mut index = AlexIndex::bulk_load(&data, cfg);
        assert!(
            index.degraded_leaves() > 0,
            "{}: collapsed projection must degrade leaves",
            cfg.variant_name()
        );
        for (k, v) in data.iter().step_by(373) {
            assert_eq!(index.get(k), Some(v), "{} key {k}", cfg.variant_name());
        }
        // Fresh inserts interleave with the loaded keys and stay correct.
        for i in 0..2000u64 {
            index.insert(base + i * 250 + 7, i).unwrap();
        }
        for i in (0..2000u64).step_by(41) {
            assert_eq!(index.get(&(base + i * 250 + 7)), Some(&i));
        }
        let mut last = None;
        let visited = index.scan_from(&base, 500, |k, _| {
            assert!(last.is_none_or(|p| p < *k), "scan out of order");
            last = Some(*k);
        });
        assert_eq!(visited, 500);
        index.debug_assert_invariants();
    }
}

#[test]
fn sentinel_key_rejected_at_every_entry_point() {
    let mut index = AlexIndex::bulk_load(&pairs(100, 2), AlexConfig::ga_armi());
    assert_eq!(index.insert(u64::MAX, 1), Err(InsertError::UnsupportedKey));
    assert_eq!(index.bulk_insert(&[(500, 1), (u64::MAX, 2)]), Err(InsertError::UnsupportedKey));
    assert_eq!(index.get(&500), None, "rejected batch must apply nothing");
    assert_eq!(index.len(), 100);
    assert_eq!(index.get(&u64::MAX), None);
}

#[test]
#[should_panic(expected = "sentinel")]
fn bulk_load_panics_on_sentinel() {
    let _ = AlexIndex::bulk_load(&[(1u64, 1u64), (u64::MAX, 2)], AlexConfig::ga_armi());
}

#[test]
fn bulk_insert_into_empty_index() {
    let mut index: AlexIndex<u64, u64> = AlexIndex::new(AlexConfig::ga_armi());
    let data = pairs(500, 3);
    assert_eq!(index.bulk_insert(&data), Ok(500));
    assert_eq!(index.len(), 500);
    for (k, v) in &data {
        assert_eq!(index.get(k), Some(v));
    }
    index.debug_assert_invariants();
}
