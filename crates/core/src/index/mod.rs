//! The ALEX index: an RMI of linear models over flexible data nodes.
//!
//! Inner nodes route purely by model prediction (no comparisons until
//! the leaf, §3.2); leaves are [`crate::data_node::DataNode`]s. The RMI
//! is built either statically (two levels, fixed leaf count) or
//! adaptively (Algorithm 4), and can optionally split leaves on inserts
//! (§3.4.2).
//!
//! The implementation is stratified into submodules with a strict
//! layering — only `store` touches the node arena:
//!
//! - `store` — `NodeStore`: arena storage (dense `Vec` or
//!   epoch-protected atomic slots, per [`crate::config::StoreMode`]),
//!   `NodeId` allocation, publication/retirement, and the
//!   doubly-linked leaf chain.
//! - `build` — static/adaptive RMI construction (Algorithm 4).
//! - `ops` — point, range, and sorted-batch operations.
//! - `split` — node splitting on inserts (§3.4.2), published as a
//!   single atomic replacement so concurrent readers never block.
//! - `concurrent` — [`EpochAlex`], the internally synchronized wrapper
//!   whose readers pin an epoch instead of taking any lock.

mod build;
mod concurrent;
mod delta;
mod ops;
mod split;
mod store;

#[cfg(test)]
mod tests;

use core::mem::size_of;
use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::config::AlexConfig;
use crate::data_node::DataNode;
use crate::key::AlexKey;
use crate::stats::{SizeReport, WriteStats};

pub use concurrent::{EpochAlex, EpochStats, EpochWriteStats};
pub(crate) use store::{LeafNode, Node, NodeId};
use store::{InnerNode, NodeStore};

/// An updatable adaptive learned index (the paper's contribution).
///
/// # Examples
/// ```
/// use alex_core::{AlexConfig, AlexIndex};
///
/// let data: Vec<(u64, u64)> = (0..10_000).map(|k| (k * 2, k)).collect();
/// let mut index = AlexIndex::bulk_load(&data, AlexConfig::ga_armi());
/// assert_eq!(index.get(&4000), Some(&2000));
/// index.insert(4001, 99).unwrap();
/// assert_eq!(index.get(&4001), Some(&99));
/// let scan: Vec<u64> = index.range_from(&3999, 3).map(|(k, _)| *k).collect();
/// assert_eq!(scan, vec![4000, 4001, 4002]);
/// ```
#[derive(Debug)]
pub struct AlexIndex<K, V> {
    /// Storage layer: node arena + leaf chain. Only `store.rs` indexes
    /// the arena directly.
    store: NodeStore<K, V>,
    root: NodeId,
    config: AlexConfig,
    /// Entry count. Atomic so the shared-write path ([`EpochAlex`])
    /// can maintain it through `&self`; the exclusive path uses plain
    /// relaxed updates.
    len: AtomicUsize,
    /// Index-level write counters (splits; node counters are summed on
    /// demand).
    splits: AtomicU64,
}

impl<K: Clone, V: Clone> Clone for AlexIndex<K, V> {
    /// Deep copy (exclusive regime: fresh arena, empty retire lists).
    fn clone(&self) -> Self {
        Self {
            store: self.store.clone(),
            root: self.root,
            config: self.config,
            len: AtomicUsize::new(self.len.load(Ordering::Relaxed)),
            splits: AtomicU64::new(self.splits.load(Ordering::Relaxed)),
        }
    }
}

impl<K: AlexKey, V: Clone + Default> AlexIndex<K, V> {
    /// An empty index ("cold start": a single empty data node that
    /// grows by splitting, §3.4.2).
    pub fn new(config: AlexConfig) -> Self {
        let mut store = NodeStore::with_mode(config.store_mode);
        store.push_mut(Node::Leaf(LeafNode::new(
            DataNode::empty(config.layout, config.node),
            None,
            None,
        )));
        Self {
            store,
            root: 0,
            config,
            len: AtomicUsize::new(0),
            splits: AtomicU64::new(0),
        }
    }

    /// Bulk-load from sorted, strictly-increasing pairs.
    ///
    /// # Panics
    /// Panics if `pairs` contains the reserved [`alex_api::SentinelKey::MAX_KEY`]
    /// sentinel (gapped storage uses it for empty slots), and (debug
    /// builds) if `pairs` is not strictly increasing by key.
    pub fn bulk_load(pairs: &[(K, V)], config: AlexConfig) -> Self {
        assert!(
            pairs.last().is_none_or(|(k, _)| !k.is_sentinel()),
            "bulk_load: the MAX_KEY sentinel is reserved and cannot be stored"
        );
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load input must be strictly increasing"
        );
        let mut index = Self {
            store: NodeStore::with_mode(config.store_mode),
            root: 0,
            config,
            len: AtomicUsize::new(pairs.len()),
            splits: AtomicU64::new(0),
        };
        index.build(pairs);
        index
    }

    /// Upgrade this exclusive index into an internally synchronized
    /// [`EpochAlex`] (converting a dense arena to the epoch flavour if
    /// needed). The bulk-load → serve bridge: build dense (fastest),
    /// then go concurrent. [`EpochAlex::into_inner`] is the inverse,
    /// restoring the flavour named by `config.store_mode`.
    pub fn into_concurrent(self) -> EpochAlex<K, V> {
        EpochAlex::from_index(self)
    }

    /// Number of keys stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configuration this index was built with.
    #[inline]
    pub fn config(&self) -> &AlexConfig {
        &self.config
    }

    /// Fold every leaf's pending delta buffer into its base array
    /// (exclusive regime). After this, reads and writes touch the
    /// gapped arrays directly; [`EpochAlex::into_inner`] calls it so
    /// the recovered index is always delta-free.
    pub fn flush_deltas(&mut self) {
        for id in 0..self.store.node_count() {
            if matches!(self.store.node(id), Node::Leaf(_)) {
                self.store.leaf_mut(id).flush_delta();
            }
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Depth of the RMI (0 = root is a leaf).
    pub fn depth(&self) -> usize {
        let mut d = 0;
        let mut id = self.root;
        loop {
            match self.store.node(id) {
                Node::Inner(inner) => {
                    id = inner.children[0];
                    d += 1;
                }
                Node::Leaf(_) => return d,
            }
        }
    }

    /// Number of data (leaf) nodes.
    pub fn num_data_nodes(&self) -> usize {
        self.store.num_leaves()
    }

    /// Number of data nodes whose model degraded (locally constant
    /// `as_f64` projection — shared string prefixes, dense `u64`s past
    /// 2⁵³) and which therefore fell back to uniform placement + binary
    /// search at their last (re)train.
    pub fn degraded_leaves(&self) -> usize {
        self.store.leaves().filter(|l| l.data.is_degraded()).count()
    }

    /// Key counts per data node in key order (Figure 12 / Appendix B).
    pub fn leaf_sizes(&self) -> Vec<usize> {
        let mut order = Vec::new();
        self.collect_leaves(self.root, &mut order);
        order.iter().map(|&id| self.store.leaf(id).live_keys()).collect()
    }

    /// Aggregated write counters across all data nodes plus index-level
    /// splits.
    pub fn write_stats(&self) -> WriteStats {
        let mut total = WriteStats::default();
        for leaf in self.store.leaves() {
            total.absorb(leaf.data.write_stats());
        }
        total.splits += self.splits.load(Ordering::Relaxed);
        total
    }

    /// Aggregated read counters: `(lookups, comparisons, direct_hits)`.
    pub fn read_stats(&self) -> (u64, u64, u64) {
        let mut lookups = 0;
        let mut comparisons = 0;
        let mut hits = 0;
        for leaf in self.store.leaves() {
            let r = leaf.data.read_stats();
            lookups += r.lookups();
            comparisons += r.comparisons();
            hits += r.direct_hits();
        }
        (lookups, comparisons, hits)
    }

    /// |predicted − actual| for every stored key (Figure 7).
    pub fn prediction_errors(&self) -> Vec<usize> {
        let mut errs = Vec::with_capacity(self.len());
        for leaf in self.store.leaves() {
            errs.extend(leaf.data.prediction_errors());
        }
        errs
    }

    /// Memory accounting per §5.1: index = models + pointers +
    /// metadata; data = key/payload arrays incl. gaps + bitmaps.
    pub fn size_report(&self) -> SizeReport {
        let mut report = SizeReport::default();
        for node in self.store.iter() {
            match node {
                Node::Inner(inner) => {
                    report.num_inner_nodes += 1;
                    report.index_bytes += 2 * size_of::<f64>()
                        + inner.children.capacity() * size_of::<NodeId>()
                        + size_of::<InnerNode>();
                }
                Node::Leaf(l) => {
                    report.num_data_nodes += 1;
                    // Leaf model + chain pointers.
                    report.index_bytes += 2 * size_of::<f64>() + 2 * size_of::<Option<NodeId>>();
                    report.data_bytes += l.data.data_size_bytes() + l.delta.size_bytes();
                }
            }
        }
        report
    }

    #[cfg(any(test, debug_assertions))]
    #[allow(dead_code)] // exercised by unit, integration, and property tests
    pub(crate) fn debug_assert_invariants(&self) {
        let mut total = 0;
        for leaf in self.store.leaves() {
            leaf.data.debug_assert_invariants();
            leaf.debug_assert_delta_invariants();
            total += leaf.live_keys();
        }
        assert_eq!(total, self.len(), "len must equal sum of leaf key counts");
        // The chain must visit every key in order.
        let visited: Vec<K> = self.iter().map(|(k, _)| *k).collect();
        assert_eq!(visited.len(), self.len(), "chain must cover all keys");
        for w in visited.windows(2) {
            assert!(w[0] < w[1], "chain out of order");
        }
    }
}
