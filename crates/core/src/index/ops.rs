//! Point, range, and sorted-batch operations.
//!
//! Routing (§3.2: model predictions only, no comparisons until the
//! leaf) lives here; storage access goes through
//! [`super::store::NodeStore`]. The batch operations ([`AlexIndex::get_many`],
//! [`AlexIndex::bulk_insert`]) exploit sorted input to route through
//! the RMI once per *leaf run* instead of once per key.
//!
//! The whole read path (`get`, `range_from`, `scan_from`, `get_many`,
//! stats reads) is `&self` and `Sync`-clean — concurrent readers are
//! safe on a shared `&AlexIndex`, which the sharded front-end
//! (`alex-sharded`) relies on.

use core::sync::atomic::Ordering;

use alex_api::InsertError;

use crate::config::RmiMode;
use crate::gapped::InsertOutcome;
use crate::iter::RangeIter;
use crate::key::AlexKey;

use super::store::{LeafNode, Node, NodeId};
use super::AlexIndex;

/// Cached routing target for a run of ascending keys: a leaf plus the
/// largest key it is known to own. Valid while `key <= max_key` (or
/// unconditionally for the tail leaf): routing is monotone, so any key
/// between two keys routed to the same leaf routes there too.
struct LeafRun<K> {
    id: NodeId,
    /// Largest key stored in the leaf (`None` for an empty leaf — no
    /// ownership claim can be made, so every key re-routes).
    max_key: Option<K>,
    /// The tail leaf owns everything from its region upward.
    is_tail: bool,
}

impl<K: AlexKey> LeafRun<K> {
    /// Whether `key` is guaranteed to route to this cached leaf.
    #[inline]
    fn owns(&self, key: &K) -> bool {
        if self.is_tail {
            return true;
        }
        self.max_key.as_ref().is_some_and(|max| key <= max)
    }
}

/// Snapshot flavour of [`LeafRun`] for the read-only batch path: the
/// loaded leaf reference itself is cached, so the run survives a
/// concurrent republication of the slot (shared regime).
struct LeafRunRef<'a, K, V> {
    leaf: &'a LeafNode<K, V>,
    max_key: Option<K>,
    is_tail: bool,
}

impl<'a, K: AlexKey, V> LeafRunRef<'a, K, V> {
    fn new(leaf: &'a LeafNode<K, V>) -> Self
    where
        V: Clone + Default,
    {
        Self {
            leaf,
            max_key: leaf.routing_max_key(),
            is_tail: leaf.next.is_none(),
        }
    }

    #[inline]
    fn owns(&self, key: &K) -> bool {
        self.is_tail || self.max_key.as_ref().is_some_and(|max| key <= max)
    }
}

impl<K: AlexKey, V: Clone + Default> AlexIndex<K, V> {
    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    /// Descend by model prediction to the leaf owning `key` (§3.2:
    /// multiplications and additions only, no comparisons).
    #[inline]
    pub(crate) fn find_leaf(&self, key: &K) -> NodeId {
        self.route_to_leaf(key).0
    }

    /// Descend to the leaf owning `key`, returning the id **and the
    /// loaded leaf snapshot**. Every node along the path is loaded
    /// exactly once, so under the shared regime (pinned readers racing
    /// a publishing writer) the returned reference is a consistent
    /// snapshot even if the slot is republished immediately after —
    /// callers must never re-load the id and assume it is still a
    /// leaf.
    #[inline]
    pub(crate) fn route_to_leaf(&self, key: &K) -> (NodeId, &LeafNode<K, V>) {
        let x = key.as_f64();
        let mut id = self.root;
        loop {
            match self.store.node(id) {
                Node::Inner(inner) => {
                    let idx = inner.model.predict_clamped(x, inner.children.len());
                    id = inner.children[idx];
                }
                Node::Leaf(l) => return (id, l),
            }
        }
    }

    /// Normalize a chain pointer: if the slot at `id` has been
    /// replaced by a split's routing inner node, descend to its
    /// leftmost leaf. The replacement covers exactly the old leaf's
    /// key range, so the leftmost leaf is the correct continuation of
    /// any forward walk that was about to enter `id`.
    #[inline]
    pub(crate) fn descend_first_leaf(&self, mut id: NodeId) -> (NodeId, &LeafNode<K, V>) {
        loop {
            match self.store.node(id) {
                Node::Inner(inner) => id = inner.children[0],
                Node::Leaf(l) => return (id, l),
            }
        }
    }

    /// Mirror of [`AlexIndex::descend_first_leaf`] for the write-side
    /// chain heal: the rightmost leaf under `id`, i.e. the live chain
    /// predecessor of whatever `id`'s old occupant pointed at.
    #[inline]
    pub(crate) fn descend_last_leaf(&self, mut id: NodeId) -> (NodeId, &LeafNode<K, V>) {
        loop {
            match self.store.node(id) {
                Node::Inner(inner) => {
                    id = *inner.children.last().expect("inner nodes always have children");
                }
                Node::Leaf(l) => return (id, l),
            }
        }
    }

    /// Route `key` and capture the run cache for subsequent keys.
    fn start_run(&self, key: &K) -> LeafRun<K> {
        let id = self.find_leaf(key);
        let leaf = self.store.leaf(id);
        LeafRun {
            id,
            max_key: leaf.routing_max_key(),
            is_tail: leaf.next.is_none(),
        }
    }

    // ------------------------------------------------------------------
    // Point operations
    // ------------------------------------------------------------------

    /// Look up `key` (through the merged base + delta view; the delta
    /// is empty outside the shared write path).
    pub fn get(&self, key: &K) -> Option<&V> {
        self.route_to_leaf(key).1.live_get(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Look up `key` and return a mutable reference to its payload
    /// (payload updates, §3.2). Flushes the leaf's delta buffer first
    /// so the in-place edit and the merged view stay coherent.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let leaf = self.find_leaf(key);
        self.store.leaf_data_mut(leaf).get_mut(key)
    }

    /// Insert a pair. Errors on duplicates (ALEX does not support
    /// duplicate keys, §7) and on the reserved
    /// [`alex_api::SentinelKey::MAX_KEY`] sentinel (gapped storage uses
    /// it to fill empty slots, so storing it would be indistinguishable
    /// from a gap).
    pub fn insert(&mut self, key: K, value: V) -> Result<(), InsertError> {
        if key.is_sentinel() {
            return Err(InsertError::UnsupportedKey);
        }
        let leaf = self.find_leaf(&key);
        if self.maybe_split(leaf) {
            return self.insert(key, value);
        }
        match self.store.leaf_data_mut(leaf).insert(key, value) {
            InsertOutcome::Inserted { .. } => {
                self.len.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            InsertOutcome::Duplicate => Err(InsertError::DuplicateKey),
        }
    }

    /// Split `leaf` if the config calls for split-on-insert and the
    /// next insert would overflow it. Returns whether a split happened
    /// (routing must then restart — the leaf became an inner node).
    fn maybe_split(&mut self, leaf: NodeId) -> bool {
        if let RmiMode::Adaptive {
            max_node_keys,
            split_on_insert: true,
            split_fanout,
            ..
        } = self.config.rmi
        {
            self.store.leaf(leaf).live_keys() + 1 > max_node_keys
                && self.split_leaf(leaf, split_fanout.max(2))
        } else {
            false
        }
    }

    /// Remove `key`, returning its payload.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let leaf = self.find_leaf(key);
        let v = self.store.leaf_data_mut(leaf).remove(key)?;
        self.len.fetch_sub(1, Ordering::Relaxed);
        Some(v)
    }

    /// Update the payload of an existing key, returning the old value.
    pub fn update(&mut self, key: &K, value: V) -> Option<V> {
        self.get_mut(key).map(|slot| core::mem::replace(slot, value))
    }

    // ------------------------------------------------------------------
    // Sorted-batch operations
    // ------------------------------------------------------------------

    /// Look up a sorted (non-decreasing) batch of keys, routing through
    /// the RMI once per leaf run instead of once per key.
    ///
    /// Returns one `Option<&V>` per input key, in input order.
    ///
    /// # Panics
    /// Panics (debug builds) if `keys` is not sorted non-decreasing.
    pub fn get_many(&self, keys: &[K]) -> Vec<Option<&V>> {
        debug_assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "get_many input must be sorted"
        );
        let mut out = Vec::with_capacity(keys.len());
        let mut run: Option<LeafRunRef<'_, K, V>> = None;
        for key in keys {
            let leaf = match &run {
                Some(r) if r.owns(key) => r.leaf,
                _ => {
                    let fresh = LeafRunRef::new(self.route_to_leaf(key).1);
                    let leaf = fresh.leaf;
                    run = Some(fresh);
                    leaf
                }
            };
            out.push(leaf.live_get(key));
        }
        out
    }

    /// Insert a sorted (strictly increasing) batch of pairs, routing
    /// through the RMI once per leaf run instead of once per key.
    /// Duplicates (against the index *or* repeated within the batch)
    /// are skipped. Returns the number of pairs actually inserted, or
    /// [`InsertError::UnsupportedKey`] — with nothing applied — if the
    /// batch contains the reserved sentinel (sorted input puts it
    /// last, so the check is O(1)).
    ///
    /// Equivalent to calling [`AlexIndex::insert`] per pair, including
    /// split-on-insert behaviour.
    ///
    /// # Panics
    /// Panics (debug builds) if `pairs` is not sorted non-decreasing by
    /// key.
    pub fn bulk_insert(&mut self, pairs: &[(K, V)]) -> Result<usize, InsertError> {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_insert input must be sorted by key"
        );
        if pairs.last().is_some_and(|(k, _)| k.is_sentinel()) {
            return Err(InsertError::UnsupportedKey);
        }
        let mut inserted = 0usize;
        let mut run: Option<LeafRun<K>> = None;
        for (key, value) in pairs {
            let id = match &run {
                Some(r) if r.owns(key) => r.id,
                _ => {
                    let fresh = self.start_run(key);
                    let id = fresh.id;
                    run = Some(fresh);
                    id
                }
            };
            if self.maybe_split(id) {
                // The cached leaf became an inner node: re-route.
                run = None;
                if self.insert(*key, value.clone()).is_ok() {
                    inserted += 1;
                }
                continue;
            }
            match self.store.leaf_data_mut(id).insert(*key, value.clone()) {
                InsertOutcome::Inserted { .. } => {
                    self.len.fetch_add(1, Ordering::Relaxed);
                    inserted += 1;
                }
                InsertOutcome::Duplicate => {}
            }
        }
        Ok(inserted)
    }

    // ------------------------------------------------------------------
    // Range operations
    // ------------------------------------------------------------------

    /// Iterate entries with key `>= key` in order, across leaves, at
    /// most `limit` of them.
    pub fn range_from<'a>(&'a self, key: &K, limit: usize) -> RangeIter<'a, K, V> {
        let (id, leaf) = self.route_to_leaf(key);
        let slot = leaf.data.lower_bound_slot(key);
        let didx = leaf.delta.lower_bound(key);
        RangeIter::new(self, id, slot, didx, limit)
    }

    /// Visit up to `limit` entries with key `>= key` in order via a
    /// callback — the fast path for range scans (avoids per-item
    /// iterator dispatch; used by the Figure 4d/4h benchmarks). Returns
    /// the number of entries visited.
    ///
    /// The walk works on loaded snapshots: each leaf is read once, and
    /// a `next` pointer landing on a slot that a concurrent split has
    /// replaced with an inner node is normalized by descending to its
    /// leftmost leaf. Keys therefore stay strictly increasing even
    /// while writers publish.
    pub fn scan_from(&self, key: &K, limit: usize, mut f: impl FnMut(&K, &V)) -> usize {
        let (_, mut leaf) = self.route_to_leaf(key);
        let mut visited = leaf.scan_merged(Some(key), limit, &mut f);
        loop {
            if visited >= limit {
                return visited;
            }
            match leaf.next {
                Some(next) => {
                    leaf = self.descend_first_leaf(next).1;
                    visited += leaf.scan_merged(None, limit - visited, &mut f);
                }
                None => return visited,
            }
        }
    }

    /// Iterate all entries in key order.
    pub fn iter(&self) -> RangeIter<'_, K, V> {
        // The stored head may predate a head split: normalize.
        let (head, _) = self.descend_first_leaf(self.store.head_leaf());
        RangeIter::new(self, head, 0, 0, usize::MAX)
    }
}
