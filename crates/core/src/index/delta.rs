//! Per-leaf delta buffers and the merged read view.
//!
//! PR 4's epoch write path paid a full leaf clone per point write
//! (copy-on-write). The delta buffer amortizes that: a leaf snapshot is
//! published together with a small sorted side-array of pending edits
//! ([`DeltaBuf`]), and a point write republishes only a *shallow* copy
//! of the leaf — the gapped base array is shared through an `Arc`, the
//! delta gains one entry. Readers merge the two on the fly; when the
//! buffer reaches the configured capacity
//! (`AlexConfig::delta_buffer_capacity`) the writer folds it into a
//! fresh base array (one real leaf clone) and publishes that with an
//! empty buffer. A leaf write thus costs `O(delta)` instead of
//! `O(leaf)`, with one `O(leaf)` flush every `capacity` writes —
//! `O(leaf / capacity)` amortized.
//!
//! ## Entry invariants
//!
//! The buffer holds at most one entry per key, sorted by key:
//!
//! - [`DeltaOp::Tombstone`] ⇒ the key **is** occupied in the base
//!   array (a removed buffered insert is dropped outright, never
//!   tombstoned).
//! - [`DeltaOp::Put`] for a key in the base is a pending payload
//!   update (shadow); for a key absent from the base it is a pending
//!   insert.
//!
//! `debug_assert_delta_invariants` checks both, and the merged-view
//! helpers on [`LeafNode`] rely on them.
//!
//! ## Lifecycle
//!
//! Deltas are created only by the shared write path
//! ([`super::concurrent::EpochAlex`]); the exclusive (`&mut`) path
//! flushes a leaf's delta in place before touching its base array
//! ([`super::store::NodeStore::leaf_data_mut`]), so classic
//! single-threaded use never observes a non-empty buffer. A leaf split
//! folds the delta into the redistributed children (they start with
//! empty buffers), and `EpochAlex::into_inner` flushes every buffer so
//! the recovered [`super::AlexIndex`] is delta-free.

use crate::key::AlexKey;
use std::sync::Arc;

use super::store::LeafNode;

/// One pending edit riding alongside a leaf snapshot.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum DeltaOp<V> {
    /// Pending insert (key absent from the base) or payload update
    /// (key present — the delta value shadows the base value).
    Put(V),
    /// Pending removal of a key that is occupied in the base array.
    Tombstone,
}

/// A bounded, sorted buffer of pending edits for one leaf. At most one
/// entry per key; capacity is enforced by the writer (the buffer
/// itself only stores).
#[derive(Debug, Clone)]
pub(crate) struct DeltaBuf<K, V> {
    entries: Vec<(K, DeltaOp<V>)>,
}

impl<K, V> Default for DeltaBuf<K, V> {
    fn default() -> Self {
        Self { entries: Vec::new() }
    }
}

impl<K: AlexKey, V> DeltaBuf<K, V> {
    /// Number of buffered entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    fn idx(&self, key: &K) -> Result<usize, usize> {
        self.entries
            .binary_search_by(|(k, _)| k.partial_cmp(key).expect("keys are totally ordered"))
    }

    /// The buffered op for `key`, if any.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&DeltaOp<V>> {
        self.idx(key).ok().map(|i| &self.entries[i].1)
    }

    /// Whether the buffer holds an entry (of either kind) for `key`.
    #[inline]
    pub fn contains(&self, key: &K) -> bool {
        self.idx(key).is_ok()
    }

    /// Upsert a pending insert/update. Replacing an existing entry
    /// (including a tombstone) never grows the buffer.
    pub fn put(&mut self, key: K, value: V) {
        match self.idx(&key) {
            Ok(i) => self.entries[i].1 = DeltaOp::Put(value),
            Err(i) => self.entries.insert(i, (key, DeltaOp::Put(value))),
        }
    }

    /// Upsert a pending removal. Callers must uphold the tombstone
    /// invariant (`key` occupied in the base array).
    pub fn tombstone(&mut self, key: K) {
        match self.idx(&key) {
            Ok(i) => self.entries[i].1 = DeltaOp::Tombstone,
            Err(i) => self.entries.insert(i, (key, DeltaOp::Tombstone)),
        }
    }

    /// Drop the entry for `key` (undoes a buffered insert).
    pub fn remove_entry(&mut self, key: &K) {
        if let Ok(i) = self.idx(key) {
            self.entries.remove(i);
        }
    }

    /// Index of the first entry with key `>= key`.
    #[inline]
    pub fn lower_bound(&self, key: &K) -> usize {
        self.entries.partition_point(|(k, _)| k < key)
    }

    /// The entry at `i` (callers keep `i < len()`).
    #[inline]
    pub fn entry(&self, i: usize) -> (&K, &DeltaOp<V>) {
        let (k, op) = &self.entries[i];
        (k, op)
    }

    /// Largest buffered key, if any.
    #[inline]
    pub fn max_key(&self) -> Option<&K> {
        self.entries.last().map(|(k, _)| k)
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &DeltaOp<V>)> {
        self.entries.iter().map(|(k, op)| (k, op))
    }

    /// Drain all entries in key order (flush).
    pub fn drain(&mut self) -> impl Iterator<Item = (K, DeltaOp<V>)> + '_ {
        self.entries.drain(..)
    }

    /// Heap bytes held by the buffer (size accounting).
    pub fn size_bytes(&self) -> usize {
        self.entries.capacity() * core::mem::size_of::<(K, DeltaOp<V>)>()
    }
}

// ----------------------------------------------------------------------
// Merged view: base array + delta, read as one ordered map.
// ----------------------------------------------------------------------

impl<K: AlexKey, V: Clone + Default> LeafNode<K, V> {
    /// Look up `key` through the merged view: the delta wins (a `Put`
    /// shadows the base payload, a tombstone hides it), the base
    /// answers otherwise.
    #[inline]
    pub fn live_get(&self, key: &K) -> Option<&V> {
        if self.delta.is_empty() {
            return self.data.get(key);
        }
        match self.delta.get(key) {
            Some(DeltaOp::Put(v)) => Some(v),
            Some(DeltaOp::Tombstone) => None,
            None => self.data.get(key),
        }
    }

    /// Number of live keys in the merged view (base plus pending
    /// inserts, minus tombstones). O(1): the delta's net contribution
    /// is maintained by the writers (`delta_net`); the debug
    /// invariants cross-check it against [`LeafNode::recount_delta_net`].
    #[inline]
    pub fn live_keys(&self) -> usize {
        debug_assert_eq!(self.delta_net, self.recount_delta_net(), "delta_net drifted");
        usize::try_from(self.data.num_keys() as isize + self.delta_net)
            .expect("net delta can never exceed the base population")
    }

    /// Always-on form of the `delta_net` cross-check: assert the
    /// cached net delta matches a recount, in release builds too.
    ///
    /// Called at the durability flush boundaries — epoch flush-clones
    /// and `leaf_snapshots` serialization — where a drifted cache
    /// would be *persisted* (a snapshot's recorded population and the
    /// split-threshold arithmetic both trust `delta_net`). The recount
    /// is `O(delta · log leaf)`, negligible next to the `O(leaf)`
    /// work both boundaries already do; the per-read hot path keeps
    /// the `debug_assert_eq!` in [`LeafNode::live_keys`] instead.
    pub(crate) fn assert_delta_net_coherent(&self) {
        assert_eq!(
            self.delta_net,
            self.recount_delta_net(),
            "delta_net drifted: cached net delta disagrees with a recount"
        );
    }

    /// Recount the delta's net live-key contribution from scratch
    /// (`O(delta · log leaf)`) — the ground truth `delta_net` caches.
    pub(crate) fn recount_delta_net(&self) -> isize {
        let mut n = 0isize;
        for (k, op) in self.delta.iter() {
            match op {
                DeltaOp::Put(_) => {
                    if self.data.get(k).is_none() {
                        n += 1;
                    }
                }
                // Tombstone invariant: the key is occupied in the base.
                DeltaOp::Tombstone => n -= 1,
            }
        }
        n
    }

    /// Largest key this leaf is known to own, for monotone run
    /// routing. May name a tombstoned key — still sound: routing is
    /// pure model arithmetic, so a key that once routed here keeps
    /// routing here whether or not it is still live.
    pub fn routing_max_key(&self) -> Option<K> {
        let base = self.data.max_key().copied();
        let buffered = self.delta.max_key().copied();
        match (base, buffered) {
            (Some(b), Some(d)) => Some(if d > b { d } else { b }),
            (some, None) => some,
            (None, some) => some,
        }
    }

    /// Next merged entry at or after positions `(slot, didx)`:
    /// `slot` is the next base slot to inspect (gaps are normalized),
    /// `didx` the next delta index. Returns the entry plus the
    /// positions to resume from. Tombstones and shadowed base entries
    /// are resolved here.
    pub(crate) fn merged_next(
        &self,
        mut slot: usize,
        mut didx: usize,
    ) -> Option<((&K, &V), usize, usize)> {
        loop {
            let base = if self.data.num_keys() > 0 && slot < self.data.capacity() {
                if slot == 0 {
                    self.data.first_occupied()
                } else {
                    self.data.next_occupied_after(slot - 1)
                }
            } else {
                None
            };
            let buffered = (didx < self.delta.len()).then(|| self.delta.entry(didx));
            match (base, buffered) {
                (None, None) => return None,
                (Some(s), None) => {
                    let (k, v) = self.data.entry_at(s);
                    return Some(((k, v), s + 1, didx));
                }
                (None, Some((dk, op))) => match op {
                    DeltaOp::Put(v) => return Some(((dk, v), slot, didx + 1)),
                    // Its base key lies before `slot` (already passed).
                    DeltaOp::Tombstone => didx += 1,
                },
                (Some(s), Some((dk, op))) => {
                    let (bk, bv) = self.data.entry_at(s);
                    if dk < bk {
                        match op {
                            DeltaOp::Put(v) => return Some(((dk, v), slot, didx + 1)),
                            DeltaOp::Tombstone => didx += 1,
                        }
                    } else if dk == bk {
                        match op {
                            // Shadow: the buffered payload wins.
                            DeltaOp::Put(v) => return Some(((dk, v), s + 1, didx + 1)),
                            DeltaOp::Tombstone => {
                                slot = s + 1;
                                didx += 1;
                            }
                        }
                    } else {
                        return Some(((bk, bv), s + 1, didx));
                    }
                }
            }
        }
    }

    /// Visit up to `limit` merged entries with key `>= start` (all
    /// entries when `start` is `None`) in key order; returns the
    /// number visited. Falls back to the raw base scan when the delta
    /// is empty (the common case on read-heavy leaves).
    pub fn scan_merged(&self, start: Option<&K>, limit: usize, f: &mut impl FnMut(&K, &V)) -> usize {
        let slot = match start {
            Some(k) => self.data.lower_bound_slot(k),
            None => 0,
        };
        if self.delta.is_empty() {
            return self.data.scan_from_slot(slot, limit, f);
        }
        let mut didx = match start {
            Some(k) => self.delta.lower_bound(k),
            None => 0,
        };
        let mut slot = slot;
        let mut visited = 0usize;
        while visited < limit {
            match self.merged_next(slot, didx) {
                Some(((k, v), s, d)) => {
                    f(k, v);
                    visited += 1;
                    slot = s;
                    didx = d;
                }
                None => break,
            }
        }
        visited
    }

    /// All live pairs of the merged view in key order (split planning,
    /// flush-by-rebuild).
    pub fn to_pairs_merged(&self) -> Vec<(K, V)> {
        if self.delta.is_empty() {
            return self.data.to_pairs();
        }
        let mut out = Vec::with_capacity(self.live_keys());
        let (mut slot, mut didx) = (0usize, 0usize);
        while let Some(((k, v), s, d)) = self.merged_next(slot, didx) {
            out.push((*k, v.clone()));
            slot = s;
            didx = d;
        }
        out
    }

    /// Fold the delta into the base array in place, leaving the buffer
    /// empty. Clones the base first if it is still shared with a
    /// published snapshot (`Arc::make_mut`); with a uniquely owned
    /// base (the exclusive regime) the fold is in place.
    pub fn flush_delta(&mut self) {
        if self.delta.is_empty() {
            return;
        }
        self.delta_net = 0;
        let data = Arc::make_mut(&mut self.data);
        for (key, op) in self.delta.drain() {
            match op {
                DeltaOp::Put(value) => match data.get_mut(&key) {
                    Some(slot) => *slot = value,
                    None => {
                        let _ = data.insert(key, value);
                    }
                },
                DeltaOp::Tombstone => {
                    data.remove(&key);
                }
            }
        }
    }

    #[cfg(any(test, debug_assertions))]
    #[allow(dead_code)] // exercised by unit, integration, and property tests
    pub(crate) fn debug_assert_delta_invariants(&self) {
        assert_eq!(self.delta_net, self.recount_delta_net(), "cached delta_net drifted");
        let mut prev: Option<&K> = None;
        for (k, op) in self.delta.iter() {
            assert!(prev.is_none_or(|p| p < k), "delta buffer out of order at {k:?}");
            if matches!(op, DeltaOp::Tombstone) {
                assert!(
                    self.data.get(k).is_some(),
                    "tombstone for {k:?} without a base occupant"
                );
            }
            prev = Some(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::store::LeafNode;
    use super::*;
    use crate::config::{NodeLayout, NodeParams};
    use crate::data_node::DataNode;

    fn leaf(pairs: &[(u64, u64)]) -> LeafNode<u64, u64> {
        LeafNode::new(
            DataNode::bulk_load(pairs, NodeLayout::Gapped, NodeParams::default()),
            None,
            None,
        )
    }

    fn collect(l: &LeafNode<u64, u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        l.scan_merged(None, usize::MAX, &mut |k, v| out.push((*k, *v)));
        out
    }

    #[test]
    fn merged_view_interleaves_puts_and_tombstones() {
        let mut l = leaf(&[(10, 1), (20, 2), (30, 3), (40, 4)]);
        l.delta.put(15, 100); // fresh insert between base keys
        l.delta.put(20, 200); // shadow update of a base key
        l.delta.tombstone(30); // pending removal
        l.delta.put(50, 500); // fresh insert past the base max
        l.delta_net = l.recount_delta_net();
        l.debug_assert_delta_invariants();

        assert_eq!(l.live_get(&15), Some(&100));
        assert_eq!(l.live_get(&20), Some(&200));
        assert_eq!(l.live_get(&30), None, "tombstone hides the base entry");
        assert_eq!(l.live_get(&40), Some(&4));
        assert_eq!(l.live_get(&50), Some(&500));
        assert_eq!(l.live_keys(), 5);
        assert_eq!(l.routing_max_key(), Some(50));
        assert_eq!(
            collect(&l),
            vec![(10, 1), (15, 100), (20, 200), (40, 4), (50, 500)]
        );
        assert_eq!(l.to_pairs_merged(), collect(&l));
    }

    #[test]
    fn scan_merged_honours_start_and_limit() {
        let mut l = leaf(&[(10, 1), (20, 2), (30, 3)]);
        l.delta.put(25, 25);
        l.delta_net = 1;
        let mut seen = Vec::new();
        assert_eq!(l.scan_merged(Some(&20), 2, &mut |k, _| seen.push(*k)), 2);
        assert_eq!(seen, vec![20, 25]);
    }

    #[test]
    fn flush_folds_delta_into_base() {
        let mut l = leaf(&[(10, 1), (20, 2), (30, 3)]);
        l.delta.put(15, 15);
        l.delta.tombstone(20);
        l.delta.put(30, 300);
        l.delta_net = l.recount_delta_net();
        let merged = collect(&l);
        l.flush_delta();
        assert!(l.delta.is_empty());
        assert_eq!(collect(&l), merged, "flush must preserve the merged view");
        assert_eq!(l.data.get(&30), Some(&300));
        assert_eq!(l.data.get(&20), None);
    }

    #[test]
    fn shallow_clone_shares_the_base_array() {
        let l = leaf(&[(1, 1), (2, 2)]);
        let copy = l.clone();
        assert!(Arc::ptr_eq(&l.data, &copy.data), "clone must not deep-copy the base");
    }

    #[test]
    fn removing_a_buffered_insert_drops_the_entry() {
        let mut l = leaf(&[(10, 1)]);
        l.delta.put(15, 15);
        l.delta_net += 1;
        assert_eq!(l.live_keys(), 2);
        l.delta.remove_entry(&15);
        l.delta_net -= 1;
        assert_eq!(l.live_keys(), 1);
        assert_eq!(l.live_get(&15), None);
    }

    #[test]
    fn empty_base_with_delta_only() {
        let mut l = leaf(&[]);
        l.delta.put(7, 70);
        l.delta.put(3, 30);
        l.delta_net = 2;
        assert_eq!(collect(&l), vec![(3, 30), (7, 70)]);
        assert_eq!(l.live_keys(), 2);
        assert_eq!(l.routing_max_key(), Some(7));
    }
}
