//! Node splitting on inserts (§3.4.2).
//!
//! A full leaf's model becomes an inner model routing to `fanout`
//! fresh leaves; data is redistributed by the original model; no
//! rebalancing. Chain surgery goes through
//! [`super::store::NodeStore::splice_chain`], and the old leaf is
//! replaced *in place* so parent child-pointers stay valid.

use crate::key::AlexKey;

use super::build::{partition_by_model, root_partition_model};
use super::store::{InnerNode, Node, NodeId};
use super::AlexIndex;

impl<K: AlexKey, V: Clone + Default> AlexIndex<K, V> {
    /// Split the leaf at `id` into `fanout` children. Returns `false`
    /// when no linear model can separate the keys (the split would make
    /// no progress).
    pub(super) fn split_leaf(&mut self, id: NodeId, fanout: usize) -> bool {
        let (pairs, old_model, capacity, prev, next) = {
            let l = self.store.leaf(id);
            (
                l.data.to_pairs(),
                l.data.model(),
                l.data.capacity(),
                l.prev,
                l.next,
            )
        };
        // Rescale the leaf's slot-space model to child-index space.
        let scale = fanout as f64 / capacity.max(1) as f64;
        let mut route = old_model.scaled(scale);
        let mut parts = partition_by_model(&pairs, &route, fanout);
        if parts.iter().any(|r| r.len() == pairs.len()) {
            // The inherited model routes everything to one child; retry
            // with a freshly fitted partition model before giving up.
            route = root_partition_model(&pairs, fanout);
            parts = partition_by_model(&pairs, &route, fanout);
            if parts.iter().any(|r| r.len() == pairs.len()) {
                return false;
            }
        }
        let mut children = Vec::with_capacity(fanout);
        for range in parts {
            children.push(self.push_leaf(&pairs[range]));
        }
        // Splice the new leaves into the chain where the old leaf was.
        self.store.splice_chain(prev, next, &children);
        // The old leaf becomes the routing inner node in place, so all
        // parent child-pointers stay valid.
        self.store.replace(
            id,
            Node::Inner(InnerNode {
                model: route,
                children,
            }),
        );
        self.splits += 1;
        true
    }
}
