//! Node splitting on inserts (§3.4.2), published atomically.
//!
//! A full leaf's model becomes an inner model routing to `fanout`
//! fresh leaves; data is redistributed by the original model; no
//! rebalancing. Since the epoch rework the split is a *publication*,
//! not an in-place rewrite:
//!
//! 1. The fresh leaves are pushed **fully linked** (their `prev`/`next`
//!    pointers are computed from pre-reserved ids before they enter
//!    the arena), so no node is ever mutated while reachable.
//! 2. The routing inner node is then [`NodeStore::publish`]ed at the
//!    old leaf's id — the **single atomic publication point**. One
//!    atomic store flips every reader from the old leaf to the new
//!    subtree; the old leaf is retired to the epoch garbage list.
//! 3. Neighbour chain pointers are *healed* afterwards (in place when
//!    exclusive, copy-on-write when shared). Readers that raced the
//!    heal and walked into the old id simply find the inner node and
//!    descend to its leftmost leaf — the replacement covers the same
//!    key range, so ordered scans stay ordered.
//!
//! [`NodeStore::publish`]: super::store::NodeStore::publish

use core::sync::atomic::Ordering;

use crate::data_node::DataNode;
use crate::key::AlexKey;

use super::build::{partition_by_model, root_partition_model};
use super::store::{InnerNode, LeafNode, Node, NodeId};
use super::AlexIndex;

impl<K: AlexKey, V: Clone + Default> AlexIndex<K, V> {
    /// Split the leaf at `id` into `fanout` children (exclusive
    /// regime). Returns `false` when no linear model can separate the
    /// keys (the split would make no progress).
    pub(super) fn split_leaf(&mut self, id: NodeId, fanout: usize) -> bool {
        let Some((first, last, prev, next)) = self.split_leaf_publish(id, fanout) else {
            return false;
        };
        // Heal neighbour chain pointers in place — exclusive access
        // means no reader can observe the intermediate state.
        if let Some(p) = prev {
            let (pid, _) = self.descend_last_leaf(p);
            self.store.leaf_mut(pid).next = Some(first);
        }
        if let Some(n) = next {
            let (nid, _) = self.descend_first_leaf(n);
            self.store.leaf_mut(nid).prev = Some(last);
        }
        true
    }

    /// Split the leaf at `id` under the shared regime: the caller is
    /// the single serialized writer; readers may be descending
    /// concurrently. Chain healing goes copy-on-write.
    pub(crate) fn split_leaf_shared(&self, id: NodeId, fanout: usize) -> bool {
        let Some((first, _last, prev, _next)) = self.split_leaf_publish(id, fanout) else {
            return false;
        };
        // Heal the predecessor's forward pointer so scans reach the
        // new leaves directly instead of descending through the
        // retired slot's inner node. Readers holding the old
        // predecessor snapshot still work: they walk into `id`, find
        // the inner node, and descend. `prev` pointers are write-side
        // hints only, so the successor is left untouched. The clone
        // here is shallow (the base array is `Arc`-shared with the
        // retiring snapshot; only the chain pointer changes).
        if let Some(p) = prev {
            let (pid, pleaf) = self.descend_last_leaf(p);
            debug_assert_eq!(pleaf.next, Some(id), "chain predecessor must point at the split leaf");
            let mut healed = pleaf.clone();
            healed.next = Some(first);
            self.store.publish(pid, Node::Leaf(healed));
        }
        true
    }

    /// The shared split core: plan the partition, push fully-linked
    /// children, and publish the routing inner node at `id`. Returns
    /// `(first_child, last_child, old_prev, old_next)`, or `None` if
    /// no model separates the keys.
    ///
    /// Callers must be the single writer (exclusive `&mut` access, or
    /// holding the shared wrapper's writer mutex).
    fn split_leaf_publish(
        &self,
        id: NodeId,
        fanout: usize,
    ) -> Option<(NodeId, NodeId, Option<NodeId>, Option<NodeId>)> {
        let (pairs, old_model, capacity, prev, next) = {
            let l = self.store.leaf(id);
            // The *merged* view: any pending delta edits are folded
            // into the redistributed children, which start with empty
            // delta buffers.
            (
                l.to_pairs_merged(),
                l.data.model(),
                l.data.capacity(),
                l.prev,
                l.next,
            )
        };
        // Rescale the leaf's slot-space model to child-index space.
        let scale = fanout as f64 / capacity.max(1) as f64;
        let mut route = old_model.scaled(scale);
        let mut parts = partition_by_model(&pairs, &route, fanout);
        if parts.iter().any(|r| r.len() == pairs.len()) {
            // The inherited model routes everything to one child; retry
            // with a freshly fitted partition model before giving up.
            route = root_partition_model(&pairs, fanout);
            parts = partition_by_model(&pairs, &route, fanout);
            if parts.iter().any(|r| r.len() == pairs.len()) {
                return None;
            }
        }
        // Reserve ids so each child enters the arena already wired
        // into the chain (single writer ⇒ `next_id` is stable).
        let base = self.store.next_id();
        let count = parts.len();
        let child_id = |i: usize| base + i as NodeId;
        for (i, range) in parts.iter().enumerate() {
            let leaf = LeafNode::new(
                DataNode::bulk_load(&pairs[range.clone()], self.config.layout, self.config.node),
                if i == 0 { prev } else { Some(child_id(i - 1)) },
                if i + 1 == count { next } else { Some(child_id(i + 1)) },
            );
            let got = self.store.push(Node::Leaf(leaf));
            debug_assert_eq!(got, child_id(i));
        }
        let children: Vec<NodeId> = (0..count).map(child_id).collect();
        let (first, last) = (children[0], children[count - 1]);
        if prev.is_none() {
            // Head split: repoint before publication so fresh scans
            // starting at the head never miss the low keys.
            self.store.set_head(first);
        }
        // The publication point: one atomic store makes the whole
        // subtree visible and retires the old leaf.
        self.store.publish(
            id,
            Node::Inner(InnerNode {
                model: route,
                children,
            }),
        );
        self.splits.fetch_add(1, Ordering::Relaxed);
        Some((first, last, prev, next))
    }
}
