//! Node splitting on inserts (§3.4.2), planned once, applied
//! per-regime.
//!
//! A full leaf's model becomes an inner model routing to `fanout`
//! fresh leaves; data is redistributed by the original model; no
//! rebalancing. The split is factored into a read-only **plan** and a
//! regime-specific **apply**, so both arena flavours share the
//! partitioning logic:
//!
//! 1. [`AlexIndex::plan_split`] computes the routing model and builds
//!    the fresh leaves **fully linked** (their `prev`/`next` pointers
//!    are computed from pre-reserved ids before they enter the arena),
//!    so no node is ever mutated while reachable.
//! 2. The apply step pushes the children and then installs the routing
//!    inner node at the old leaf's id. On the shared path this is
//!    [`NodeStore::publish`] — the **single atomic publication
//!    point**: one atomic store flips every reader from the old leaf
//!    to the new subtree, and the old leaf is retired to the epoch
//!    garbage list. On the exclusive path it is a plain overwrite
//!    (`publish_mut`), sound on either flavour because `&mut self`
//!    proves no concurrent reader.
//! 3. Neighbour chain pointers are *healed* afterwards (in place when
//!    exclusive, copy-on-write when shared). Readers that raced the
//!    heal and walked into the old id simply find the inner node and
//!    descend to its leftmost leaf — the replacement covers the same
//!    key range, so ordered scans stay ordered.
//!
//! [`NodeStore::publish`]: super::store::NodeStore::publish

use core::sync::atomic::Ordering;

use crate::data_node::DataNode;
use crate::key::AlexKey;
use crate::model::LinearModel;

use super::build::{partition_by_model, root_partition_model};
use super::store::{InnerNode, LeafNode, Node, NodeId};
use super::AlexIndex;

/// A fully-computed split, ready to apply: the routing model and the
/// fresh leaves, already chain-linked against the ids they will
/// receive (`base..base + children.len()`).
struct SplitPlan<K, V> {
    route: LinearModel,
    children: Vec<LeafNode<K, V>>,
    /// First child id — must equal `store.next_id()` at apply time
    /// (guaranteed: planning and applying happen under one writer).
    base: NodeId,
    prev: Option<NodeId>,
    next: Option<NodeId>,
}

impl<K, V> SplitPlan<K, V> {
    fn first(&self) -> NodeId {
        self.base
    }

    fn last(&self) -> NodeId {
        self.base + (self.children.len() - 1) as NodeId
    }
}

impl<K: AlexKey, V: Clone + Default> AlexIndex<K, V> {
    /// Split the leaf at `id` into `fanout` children (exclusive
    /// regime; either arena flavour). Returns `false` when no linear
    /// model can separate the keys (the split would make no progress).
    pub(super) fn split_leaf(&mut self, id: NodeId, fanout: usize) -> bool {
        let Some(plan) = self.plan_split(id, fanout) else {
            return false;
        };
        let (prev, next) = (plan.prev, plan.next);
        let (first, last) = (plan.first(), plan.last());
        self.apply_split_mut(id, plan);
        // Heal neighbour chain pointers in place — exclusive access
        // means no reader can observe the intermediate state.
        if let Some(p) = prev {
            let (pid, _) = self.descend_last_leaf(p);
            self.store.leaf_mut(pid).next = Some(first);
        }
        if let Some(n) = next {
            let (nid, _) = self.descend_first_leaf(n);
            self.store.leaf_mut(nid).prev = Some(last);
        }
        true
    }

    /// Split the leaf at `id` under the shared regime: the caller is
    /// the single serialized writer; readers may be descending
    /// concurrently (epoch flavour only). Chain healing goes
    /// copy-on-write.
    pub(crate) fn split_leaf_shared(&self, id: NodeId, fanout: usize) -> bool {
        let Some(plan) = self.plan_split(id, fanout) else {
            return false;
        };
        let prev = plan.prev;
        let first = plan.first();
        self.apply_split_shared(id, plan);
        // Heal the predecessor's forward pointer so scans reach the
        // new leaves directly instead of descending through the
        // retired slot's inner node. Readers holding the old
        // predecessor snapshot still work: they walk into `id`, find
        // the inner node, and descend. `prev` pointers are write-side
        // hints only, so the successor is left untouched. The clone
        // here is shallow (the base array is `Arc`-shared with the
        // retiring snapshot; only the chain pointer changes).
        if let Some(p) = prev {
            let (pid, pleaf) = self.descend_last_leaf(p);
            debug_assert_eq!(pleaf.next, Some(id), "chain predecessor must point at the split leaf");
            let mut healed = pleaf.clone();
            healed.next = Some(first);
            self.store.publish(pid, Node::Leaf(healed));
        }
        true
    }

    /// Plan a split of the leaf at `id`: partition its merged contents
    /// under a routing model and build the replacement leaves, linked
    /// against pre-reserved ids. Read-only on the arena — the caller
    /// must be the single writer so `next_id` stays stable until
    /// apply. Returns `None` if no model separates the keys.
    fn plan_split(&self, id: NodeId, fanout: usize) -> Option<SplitPlan<K, V>> {
        let (pairs, old_model, capacity, prev, next) = {
            let l = self.store.leaf(id);
            // The *merged* view: any pending delta edits are folded
            // into the redistributed children, which start with empty
            // delta buffers.
            (
                l.to_pairs_merged(),
                l.data.model(),
                l.data.capacity(),
                l.prev,
                l.next,
            )
        };
        // Rescale the leaf's slot-space model to child-index space.
        let scale = fanout as f64 / capacity.max(1) as f64;
        let mut route = old_model.scaled(scale);
        let mut parts = partition_by_model(&pairs, &route, fanout);
        if parts.iter().any(|r| r.len() == pairs.len()) {
            // The inherited model routes everything to one child; retry
            // with a freshly fitted partition model before giving up.
            route = root_partition_model(&pairs, fanout);
            parts = partition_by_model(&pairs, &route, fanout);
            if parts.iter().any(|r| r.len() == pairs.len()) {
                return None;
            }
        }
        // Reserve ids so each child enters the arena already wired
        // into the chain (single writer ⇒ `next_id` is stable).
        let base = self.store.next_id();
        let count = parts.len();
        let child_id = |i: usize| base + i as NodeId;
        let children = parts
            .iter()
            .enumerate()
            .map(|(i, range)| {
                LeafNode::new(
                    DataNode::bulk_load(&pairs[range.clone()], self.config.layout, self.config.node),
                    if i == 0 { prev } else { Some(child_id(i - 1)) },
                    if i + 1 == count { next } else { Some(child_id(i + 1)) },
                )
            })
            .collect();
        Some(SplitPlan {
            route,
            children,
            base,
            prev,
            next,
        })
    }

    /// Apply a planned split through exclusive access (either arena
    /// flavour): push the children, repoint the head if the head leaf
    /// split, and overwrite the old leaf with the routing inner node.
    fn apply_split_mut(&mut self, id: NodeId, plan: SplitPlan<K, V>) {
        debug_assert_eq!(plan.base, self.store.next_id(), "ids must not move between plan and apply");
        let first = plan.first();
        let count = plan.children.len();
        for child in plan.children {
            self.store.push_mut(Node::Leaf(child));
        }
        if plan.prev.is_none() {
            self.store.set_head(first);
        }
        self.store.publish_mut(
            id,
            Node::Inner(InnerNode {
                model: plan.route,
                children: (0..count).map(|i| first + i as NodeId).collect(),
            }),
        );
        self.splits.fetch_add(1, Ordering::Relaxed);
    }

    /// Apply a planned split through the shared writer (`&self`, epoch
    /// flavour): identical ordering, but the final step is the atomic
    /// [`NodeStore::publish`] that makes the subtree visible and
    /// retires the old leaf.
    ///
    /// [`NodeStore::publish`]: super::store::NodeStore::publish
    fn apply_split_shared(&self, id: NodeId, plan: SplitPlan<K, V>) {
        debug_assert_eq!(plan.base, self.store.next_id(), "ids must not move between plan and apply");
        let first = plan.first();
        let count = plan.children.len();
        for child in plan.children {
            self.store.push(Node::Leaf(child));
        }
        if plan.prev.is_none() {
            // Head split: repoint before publication so fresh scans
            // starting at the head never miss the low keys.
            self.store.set_head(first);
        }
        // The publication point: one atomic store makes the whole
        // subtree visible and retires the old leaf.
        self.store.publish(
            id,
            Node::Inner(InnerNode {
                model: plan.route,
                children: (0..count).map(|i| first + i as NodeId).collect(),
            }),
        );
        self.splits.fetch_add(1, Ordering::Relaxed);
    }
}
