//! [`EpochAlex`]: an internally synchronized ALEX whose readers never
//! block.
//!
//! The wrapper pairs the plain [`AlexIndex`] with the epoch machinery
//! the storage layer grew ([`crate::epoch`]):
//!
//! - **Reads** (`get`, `get_many`, `scan_from`, stats) pin an epoch
//!   and descend the RMI on loaded snapshots. They take no lock, are
//!   wait-free with respect to splits, and return **owned** values
//!   (cloned out while pinned — a reference must never outlive its
//!   guard). Each loaded leaf snapshot is read through the *merged
//!   view*: its immutable base array plus the delta buffer published
//!   with it (see [`super::delta`]).
//! - **Writes** (`insert`, `remove`, `update`, `bulk_insert`)
//!   serialize on an internal mutex — mutual exclusion among writers
//!   only — and never mutate a reachable node: every change *publishes*
//!   a replacement leaf at the same id, retiring the old node to the
//!   epoch garbage list. Splits publish a routing inner node at the old
//!   leaf's id as a single atomic step (see [`super::split`]).
//!
//! ## Write amortization (the PR-4 cost note, resolved)
//!
//! The original epoch write path cloned the whole owning leaf per
//! write. Two mechanisms amortize that:
//!
//! 1. **Per-leaf delta buffers.** A point write republishes a
//!    *shallow* leaf copy: the base gapped array is shared through an
//!    `Arc`, and the edit lands in a bounded sorted side-array
//!    ([`super::delta::DeltaBuf`]) published alongside it. Readers
//!    merge the two on the fly; once the buffer reaches the capacity
//!    named by [`crate::AlexConfig::delta_buffer`] (or the leaf
//!    splits) the writer *flushes* — folds the buffer into one fresh
//!    base array — so each write costs `O(delta)` with one `O(leaf)`
//!    clone every `capacity` writes.
//! 2. **Run-level CoW in [`EpochAlex::bulk_insert`].** A sorted batch
//!    is grouped into maximal per-leaf runs by the same monotone
//!    routing the exclusive batch path uses; each touched leaf is
//!    cloned and published **once per run**, not once per key.
//!
//! [`EpochAlex::write_stats`] counts `leaf_clones` (full base-array
//! copies), `delta_hits` (writes absorbed by a buffer), and `flushes`
//! (non-empty buffers folded in) so tests and the `fig_write_amp`
//! bench can assert the amortization actually happened.
//!
//! ## Adaptive capacity (`DeltaBuffer::Adaptive`)
//!
//! With [`crate::DeltaBuffer::Adaptive`] the per-leaf cap is not a
//! constant: at every 16th flush the writer re-derives it from the
//! same counters `write_stats` exposes. The steady-state clone rate of
//! a buffered point workload is `≈ 1/(cap+1)` clones per write, so the
//! controller steers toward a target of 1/64: a window whose observed
//! `leaf_clones / writes` overshoots 1.5× the target doubles the cap
//! (write amplification too high), and one that undershoots 0.5× the
//! target *while lookups outnumber writes* halves it (readers are
//! paying the delta-merge probe for headroom the writers don't use).
//! The cap is clamped to
//! [`crate::config::MIN_ADAPTIVE_DELTA_CAPACITY`]`..=`[`crate::config::MAX_ADAPTIVE_DELTA_CAPACITY`]
//! and only ever read at write time, so the tuner costs the read path
//! nothing. The read-traffic signal needs the `read-stats` feature;
//! without it the controller is compiled out and `Adaptive` behaves
//! exactly like the static default capacity.
//!
//! ## Why a pinned reader can never observe a freed node
//!
//! A reader pins the global epoch `e` before loading any pointer, and
//! every pointer it loads was reachable at some instant while pinned.
//! A writer retires a node at the epoch current at replacement, and
//! the node is freed only once the global epoch has advanced **two**
//! steps past that — each advance requiring every pinned reader to
//! have observed the epoch being left. Any reader that could have
//! loaded the pointer is therefore unpinned before the free; any
//! reader pinned later can only load the replacement. The full
//! argument lives in the [`crate::epoch`] module docs; the
//! `tests/epoch_concurrency.rs` suite stresses it and checks that the
//! retire lists drain to zero at quiescence.
//!
//! ## Consistency model
//!
//! Point reads are atomic (a leaf snapshot — base *and* delta — is
//! immutable once published). Scans walk one leaf snapshot at a time,
//! so a scan concurrent with writes sees each leaf at a possibly
//! different instant — keys stay strictly increasing, and every
//! observed payload was live at some point. Each `bulk_insert` run
//! chunk lands through a **single publication**, so its keys become
//! visible atomically — never a torn prefix interleaved with an older
//! generation of the same slot. (With split-on-insert, a run that
//! overflows the leaf is chunked at `max_node_keys` boundaries; each
//! chunk is atomic, but a reader between chunk publications can see
//! an earlier chunk without the later ones.) This is the same
//! relaxation `ShardedAlex` already documents across shards.
//!
//! ```
//! use alex_core::{AlexConfig, EpochAlex};
//!
//! let data: Vec<(u64, u64)> = (0..10_000).map(|k| (k * 2, k)).collect();
//! let index = EpochAlex::bulk_load(&data, AlexConfig::ga_armi().with_splitting());
//!
//! // Reads and writes both take &self: share freely across threads.
//! std::thread::scope(|s| {
//!     s.spawn(|| assert_eq!(index.get(&4000), Some(2000)));
//!     s.spawn(|| assert!(index.insert(4001, 99).is_ok()));
//! });
//! assert_eq!(index.get(&4001), Some(99));
//! // Point writes are absorbed by delta buffers, not full leaf clones.
//! assert!(index.write_stats().delta_hits >= 1);
//! // At quiescence every retired node can be reclaimed.
//! assert_eq!(index.flush_retired(), 0);
//! ```

use std::sync::{Arc, Mutex, MutexGuard};

use alex_api::{BatchOps, ConcurrentIndex, IndexRead, IndexWrite, InsertError};

use crate::config::{AlexConfig, RmiMode};
use crate::gapped::InsertOutcome;
use crate::key::AlexKey;
use crate::stats::SizeReport;

use super::delta::DeltaOp;
use super::store::{LeafNode, Node};
use super::AlexIndex;
use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// An [`AlexIndex`] with lock-free, epoch-protected readers and
/// mutex-serialized, delta-buffered copy-on-write writers. The
/// protocol, the amortization scheme, and the consistency model are
/// documented on this type's source module and in [`crate::epoch`].
///
/// The wrapped index is never exposed by reference: unprotected
/// `&AlexIndex` reads racing this type's writers would be unsound.
/// Use [`EpochAlex::into_inner`] to get the index back once
/// concurrency is over.
#[derive(Debug)]
pub struct EpochAlex<K, V> {
    index: AlexIndex<K, V>,
    /// Mutual exclusion among writers only; readers never touch it.
    writer: Mutex<()>,
    /// Write-amplification counters (see [`EpochWriteStats`]).
    writes: WriteAmp,
    /// Effective per-leaf delta capacity: the configured constant for
    /// `DeltaBuffer::Fixed`, the tuner's current output for
    /// `Adaptive`. Only the write path reads it.
    delta_cap: AtomicUsize,
    /// Flush-boundary self-tuning state (see the module docs); inert
    /// for `DeltaBuffer::Fixed`.
    tuner: Tuner,
}

/// Counter snapshots from the last adaptation, letting the controller
/// reason about the *window* since then rather than lifetime totals.
/// Mutated only under the writer mutex; atomics keep the struct
/// `Sync` without another lock.
#[derive(Debug, Default)]
#[cfg_attr(not(feature = "read-stats"), allow(dead_code))]
struct Tuner {
    enabled: bool,
    last_flushes: AtomicU64,
    last_delta_hits: AtomicU64,
    last_leaf_clones: AtomicU64,
    last_lookups: AtomicU64,
    adaptations: AtomicU64,
}

/// Flushes between adaptation checks: long enough to smooth out the
/// burst right after a capacity change, short enough to converge
/// within a few thousand writes.
#[cfg(feature = "read-stats")]
const ADAPT_FLUSH_INTERVAL: u64 = 16;

/// Clone-rate setpoint: one full leaf copy per 64 point writes.
#[cfg(feature = "read-stats")]
const TARGET_CLONES_PER_WRITE: f64 = 1.0 / 64.0;

/// Reclamation diagnostics for one [`EpochAlex`] (or one shard).
///
/// At quiescence, after [`EpochAlex::flush_retired`], `pending == 0`
/// and `retired_total == freed_total`: every retired node was freed
/// exactly once (no leak, no double-retire).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Current global epoch of the index's collector.
    pub global_epoch: u64,
    /// Retired-but-not-yet-freed nodes.
    pub pending: usize,
    /// Nodes ever retired.
    pub retired_total: u64,
    /// Nodes ever freed.
    pub freed_total: u64,
}

/// Write-amplification counters for one [`EpochAlex`] (or summed over
/// epoch shards), exposed by [`EpochAlex::write_stats`].
///
/// Every point write is either a `delta_hit` (absorbed by the owning
/// leaf's delta buffer — an `O(delta)` shallow publish) or part of a
/// `leaf_clone` (a full `O(leaf)` base-array copy). Amortization
/// means `delta_hits` dominates and `leaf_clones` stays far below the
/// write count; the write-path test suite asserts exactly that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochWriteStats {
    /// Full base-array copies made by the write path (delta flushes
    /// and `bulk_insert` run publications; split redistributions are
    /// counted by `WriteStats::splits`, not here).
    pub leaf_clones: u64,
    /// Point writes absorbed by a delta buffer without copying the
    /// base array.
    pub delta_hits: u64,
    /// Non-empty delta buffers folded into a fresh base array (each
    /// flush is also one `leaf_clone`).
    pub flushes: u64,
}

#[derive(Debug, Default)]
struct WriteAmp {
    leaf_clones: AtomicU64,
    delta_hits: AtomicU64,
    flushes: AtomicU64,
}

impl WriteAmp {
    fn delta_hit(&self) {
        self.delta_hits.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> EpochWriteStats {
        EpochWriteStats {
            leaf_clones: self.leaf_clones.load(Ordering::Relaxed),
            delta_hits: self.delta_hits.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }
}

impl<K: AlexKey, V: Clone + Default> EpochAlex<K, V> {
    /// An empty index (cold start; grows by inserts/splits).
    pub fn new(config: AlexConfig) -> Self {
        Self::from_index(AlexIndex::new(config))
    }

    /// Bulk-load from sorted, strictly-increasing pairs.
    pub fn bulk_load(pairs: &[(K, V)], config: AlexConfig) -> Self {
        Self::from_index(AlexIndex::bulk_load(pairs, config))
    }

    /// Wrap an existing index (built exclusively, e.g. by
    /// [`AlexIndex::bulk_load`]) for shared use. A dense-arena index
    /// is upgraded to the epoch flavour here — the single chokepoint
    /// every `EpochAlex` construction funnels through, so the shared
    /// regime always runs on atomic slots regardless of
    /// [`crate::config::StoreMode`]. This is the bulk-load → serve
    /// bridge: build dense (fastest), then wrap to go concurrent.
    pub fn from_index(mut index: AlexIndex<K, V>) -> Self {
        index.store.ensure_epoch();
        let mode = index.config().delta_buffer;
        Self {
            index,
            writer: Mutex::new(()),
            writes: WriteAmp::default(),
            delta_cap: AtomicUsize::new(mode.initial_capacity()),
            tuner: Tuner {
                enabled: mode.is_adaptive(),
                ..Tuner::default()
            },
        }
    }

    /// Unwrap back into the exclusive index (consumes `self`, so no
    /// reader or writer can still be active). Pending delta buffers
    /// are flushed and the retire lists drained, so the returned
    /// index is delta-free with a clean arena — and the arena is
    /// converted back to the flavour named by `config.store_mode`
    /// (dense by default), making
    /// [`AlexIndex::into_concurrent`]/`into_inner` a lossless
    /// round trip.
    pub fn into_inner(self) -> AlexIndex<K, V> {
        let mut index = self.index;
        index.flush_deltas();
        index.store.flush();
        if index.config().store_mode == crate::config::StoreMode::Dense {
            index.store.ensure_dense();
        }
        index
    }

    /// Acquire the writer mutex, **recovering from poisoning**.
    ///
    /// A writer that panics (e.g. a payload `Clone` unwinding inside
    /// `remove`) poisons the mutex, and propagating that poison would
    /// permanently brick every later write to this index — and, once
    /// WAL appends run under this lock, every durable write to the
    /// shard. Recovery is sound here because writers are
    /// copy-on-write: a mutation becomes visible only through the
    /// single atomic `publish` of a replacement node, so at every
    /// unwind point the published tree is a consistent state (either
    /// the write landed in full or not at all). The guard protects
    /// *mutual exclusion*, not data invariants, so the poison flag
    /// carries no information worth dying for. Contrast the `Locked`
    /// baseline paths, which mutate in place under an `RwLock` and
    /// correctly keep propagating poison.
    fn write_lock(&self) -> MutexGuard<'_, ()> {
        self.writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Effective per-leaf delta-buffer capacity (0 = buffering off):
    /// the configured constant, or the tuner's current output under
    /// `DeltaBuffer::Adaptive`.
    fn delta_capacity(&self) -> usize {
        self.delta_cap.load(Ordering::Relaxed)
    }

    /// The per-leaf delta capacity the write path is using right now.
    /// Equals `config().delta_buffer.initial_capacity()` for
    /// `DeltaBuffer::Fixed` (always) and `Adaptive` (until the first
    /// adaptation); the differential suite asserts convergence
    /// through this.
    pub fn current_delta_capacity(&self) -> usize {
        self.delta_cap.load(Ordering::Relaxed)
    }

    /// How many times the adaptive controller has changed the cap.
    pub fn delta_adaptations(&self) -> u64 {
        self.tuner.adaptations.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Lock-free reads
    // ------------------------------------------------------------------

    /// Look up `key`, cloning the payload out while pinned. Never
    /// blocks, even while a writer splits the owning leaf.
    pub fn get(&self, key: &K) -> Option<V> {
        let _guard = self.index.store.pin();
        self.index.get(key).cloned()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let _guard = self.index.store.pin();
        self.index.get(key).is_some()
    }

    /// Visit up to `limit` entries with key `>= key` in order. The
    /// walk reads one leaf snapshot at a time (see the module docs'
    /// consistency model). Returns the number of entries visited.
    pub fn scan_from(&self, key: &K, limit: usize, f: impl FnMut(&K, &V)) -> usize {
        let _guard = self.index.store.pin();
        self.index.scan_from(key, limit, f)
    }

    /// Sorted-batch lookup (one epoch pin for the whole batch),
    /// cloning payloads out. Keys answered by the same leaf run are
    /// served from a single snapshot.
    ///
    /// # Panics
    /// Panics (debug builds) if `keys` is not sorted non-decreasing.
    pub fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        let _guard = self.index.store.pin();
        self.index.get_many(keys).into_iter().map(|v| v.cloned()).collect()
    }

    /// Visit every leaf's **merged live pairs** in key order under a
    /// single epoch pin — the serialization hook the `alex-wal`
    /// snapshotter drives. Writers are never stopped: the walk reads
    /// published (immutable) leaf snapshots one at a time, so each
    /// leaf is observed at a possibly different instant while keys
    /// stay strictly increasing across the whole walk — exactly the
    /// consistency model scans already document. Each callback slice
    /// is one leaf's base array with its delta buffer folded in.
    ///
    /// This is a durability flush boundary, so it *always* (release
    /// builds included) cross-checks each leaf's cached `delta_net`
    /// against a recount: a drifted count would silently corrupt the
    /// snapshot's recorded population.
    ///
    /// # Panics
    /// Panics if a leaf's `delta_net` bookkeeping has drifted — index
    /// corruption a snapshot must not persist.
    pub fn leaf_snapshots(&self, mut f: impl FnMut(&[(K, V)])) {
        let _guard = self.index.store.pin();
        let (_, mut leaf) = self.index.descend_first_leaf(self.index.store.head_leaf());
        loop {
            leaf.assert_delta_net_coherent();
            f(&leaf.to_pairs_merged());
            // A `next` pointer may name a slot a concurrent split just
            // replaced with a routing node; descending normalizes it.
            match leaf.next {
                Some(next) => leaf = self.index.descend_first_leaf(next).1,
                None => break,
            }
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configuration the wrapped index was built with.
    pub fn config(&self) -> &AlexConfig {
        self.index.config()
    }

    /// §5.1 size accounting. Pinned like any other read; counts may be
    /// transiently off by one node while a concurrent split publishes.
    pub fn size_report(&self) -> SizeReport {
        let _guard = self.index.store.pin();
        self.index.size_report()
    }

    /// Aggregated read counters `(lookups, comparisons, direct_hits)`
    /// summed over the current leaf snapshots. All zero without the
    /// `read-stats` feature. Counters ride the leaf snapshots, so a
    /// concurrent flush (which rebuilds the base array) may fold a
    /// leaf's tallies — treat the numbers as advisory load signals,
    /// which is all the shard rebalancer needs.
    pub fn read_stats(&self) -> (u64, u64, u64) {
        let _guard = self.index.store.pin();
        self.index.read_stats()
    }

    // ------------------------------------------------------------------
    // Serialized delta-buffered copy-on-write writes
    // ------------------------------------------------------------------

    /// Insert a pair. Errors on duplicates (stored value left
    /// unchanged) and on the reserved sentinel key.
    pub fn insert(&self, key: K, value: V) -> Result<(), InsertError> {
        let _writer = self.write_lock();
        self.insert_locked(key, value)
    }

    /// Remove `key`, returning its payload.
    pub fn remove(&self, key: &K) -> Option<V> {
        let _writer = self.write_lock();
        let _guard = self.index.store.pin();
        let (id, leaf) = self.index.route_to_leaf(key);
        // Absent keys need no publication round trip.
        let evicted = leaf.live_get(key)?.clone();
        let mut fresh = leaf.clone();
        let buffered_put = matches!(fresh.delta.get(key), Some(DeltaOp::Put(_)));
        if buffered_put {
            if fresh.data.get(key).is_some() {
                // The put shadowed a base occupant: tombstone it.
                fresh.delta.tombstone(*key);
            } else {
                // Purely buffered insert: dropping the entry undoes it.
                fresh.delta.remove_entry(key);
            }
            fresh.delta_net -= 1;
            self.writes.delta_hit();
        } else if fresh.delta.len() < self.delta_capacity() {
            // Base occupant (live_get saw no tombstone): buffer it.
            fresh.delta.tombstone(*key);
            fresh.delta_net -= 1;
            self.writes.delta_hit();
        } else {
            self.flush_clone(&mut fresh);
            Arc::make_mut(&mut fresh.data).remove(key);
        }
        self.index.store.publish(id, Node::Leaf(fresh));
        self.index.len.fetch_sub(1, Ordering::Relaxed);
        Some(evicted)
    }

    /// Replace the payload of an existing key, returning the old
    /// value.
    pub fn update(&self, key: &K, value: V) -> Option<V> {
        let _writer = self.write_lock();
        let _guard = self.index.store.pin();
        let (id, leaf) = self.index.route_to_leaf(key);
        let old = leaf.live_get(key)?.clone();
        let mut fresh = leaf.clone();
        // An existing buffered put is replaced in place, so only a new
        // shadow entry counts against the capacity.
        if fresh.delta.contains(key) || fresh.delta.len() < self.delta_capacity() {
            fresh.delta.put(*key, value);
            self.writes.delta_hit();
        } else {
            self.flush_clone(&mut fresh);
            let slot = Arc::make_mut(&mut fresh.data)
                .get_mut(key)
                .expect("live_get returned Some");
            *slot = value;
        }
        self.index.store.publish(id, Node::Leaf(fresh));
        Some(old)
    }

    /// Sorted-batch insert: one writer-lock acquisition, and **one
    /// leaf clone + publication per leaf run** — the batch is grouped
    /// by owning leaf through the same monotone routing the exclusive
    /// batch path uses, so a run of `r` keys landing in one leaf costs
    /// `O(leaf + r)` instead of `r` full clones. Duplicates are
    /// skipped; returns the number inserted, or
    /// [`InsertError::UnsupportedKey`] — with nothing applied — if the
    /// batch contains the reserved sentinel (sorted input puts it
    /// last, so the check is O(1)).
    ///
    /// Readers see each run chunk atomically (a single publication
    /// per chunk; a run is split into chunks only when it overflows a
    /// leaf under split-on-insert), interleaved with other leaves'
    /// state per the module-level consistency model.
    ///
    /// # Panics
    /// Panics (debug builds) if `pairs` is not sorted by key.
    pub fn bulk_insert(&self, pairs: &[(K, V)]) -> Result<usize, InsertError> {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_insert input must be sorted by key"
        );
        if pairs.last().is_some_and(|(k, _)| k.is_sentinel()) {
            return Err(InsertError::UnsupportedKey);
        }
        let _writer = self.write_lock();
        let _guard = self.index.store.pin();
        let mut inserted = 0usize;
        let mut i = 0usize;
        while i < pairs.len() {
            let (id, leaf) = self.index.route_to_leaf(&pairs[i].0);
            // Maximal run this leaf owns. Keys up to the leaf's max
            // key are covered in bulk by monotone routing (anything
            // between two keys routed here routes here too); keys past
            // the max — `pairs[i]` itself may already be one — extend
            // the run by individual routing until one leaves the leaf,
            // so a batch forms exactly one run per touched leaf.
            let run_end = if leaf.next.is_none() {
                pairs.len()
            } else {
                let mut end = match leaf.routing_max_key() {
                    Some(max) => i + pairs[i..].partition_point(|(k, _)| *k <= max),
                    None => i,
                };
                end = end.max(i + 1); // pairs[i] routed here by construction
                while end < pairs.len() && self.index.route_to_leaf(&pairs[end].0).0 == id {
                    end += 1;
                }
                end
            };
            // Split accounting works on the merged live count, exactly
            // like the point path; an unsplittable oversized leaf
            // (no separating model) absorbs the whole run instead.
            let mut room = usize::MAX;
            if let RmiMode::Adaptive {
                max_node_keys,
                split_on_insert: true,
                split_fanout,
                ..
            } = self.index.config().rmi
            {
                let live = leaf.live_keys();
                if live >= max_node_keys && self.index.split_leaf_shared(id, split_fanout.max(2)) {
                    continue; // the slot became a routing node: re-route
                }
                if live < max_node_keys {
                    room = max_node_keys - live;
                }
            }
            let take = (run_end - i).min(room);
            let run = &pairs[i..i + take];
            // An all-duplicate run with no pending delta would publish
            // an identical leaf: skip the clone and retirement outright
            // (short-circuits at the first fresh key, so fresh-heavy
            // batches pay one probe).
            if leaf.delta.is_empty() && run.iter().all(|(k, _)| leaf.live_get(k).is_some()) {
                i += take;
                continue;
            }
            // One clone + one publication for the whole run.
            let mut fresh = leaf.clone();
            self.flush_clone(&mut fresh);
            let data = Arc::make_mut(&mut fresh.data);
            let mut landed = 0usize;
            for (key, value) in run {
                if matches!(data.insert(*key, value.clone()), InsertOutcome::Inserted { .. }) {
                    landed += 1;
                }
            }
            self.index.store.publish(id, Node::Leaf(fresh));
            self.index.len.fetch_add(landed, Ordering::Relaxed);
            inserted += landed;
            i += take;
        }
        Ok(inserted)
    }

    /// The point-insert core; caller holds the writer mutex.
    fn insert_locked(&self, key: K, value: V) -> Result<(), InsertError> {
        if key.is_sentinel() {
            return Err(InsertError::UnsupportedKey);
        }
        let _guard = self.index.store.pin();
        loop {
            let (id, leaf) = self.index.route_to_leaf(&key);
            if leaf.live_get(&key).is_some() {
                return Err(InsertError::DuplicateKey);
            }
            // Split-on-insert on the merged live count, published
            // atomically (the delta folds into the children); re-route
            // after.
            if let RmiMode::Adaptive {
                max_node_keys,
                split_on_insert: true,
                split_fanout,
                ..
            } = self.index.config().rmi
            {
                if leaf.live_keys() >= max_node_keys
                    && self.index.split_leaf_shared(id, split_fanout.max(2))
                {
                    continue;
                }
            }
            // Copy-on-write publication: readers see the old snapshot
            // or the new one, never an intermediate state. The common
            // case is a *shallow* copy — base array shared, edit
            // buffered in the delta.
            let mut fresh = leaf.clone();
            // A tombstoned key re-inserts by flipping its entry in
            // place, so only genuinely new entries count against the
            // capacity.
            if fresh.delta.contains(&key) || fresh.delta.len() < self.delta_capacity() {
                fresh.delta.put(key, value);
                fresh.delta_net += 1;
                self.writes.delta_hit();
            } else {
                self.flush_clone(&mut fresh);
                match Arc::make_mut(&mut fresh.data).insert(key, value) {
                    InsertOutcome::Inserted { .. } => {}
                    InsertOutcome::Duplicate => unreachable!("live_get reported the key absent"),
                }
            }
            self.index.store.publish(id, Node::Leaf(fresh));
            self.index.len.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
    }

    /// Account for (and perform) the full-leaf copy a non-buffered
    /// write pays: folds any pending delta into an unshared base
    /// array. The subsequent `Arc::make_mut` by the caller is then
    /// in place.
    fn flush_clone(&self, fresh: &mut LeafNode<K, V>) {
        // Flush boundary: the cached net delta is about to be folded
        // into a fresh base array, so verify it against a recount even
        // in release builds — cheap (`O(delta · log leaf)`) next to
        // the `O(leaf)` copy this path already pays, and the last
        // moment a drift is caught before it corrupts the new base.
        fresh.assert_delta_net_coherent();
        if !fresh.delta.is_empty() {
            self.writes.flushes.fetch_add(1, Ordering::Relaxed);
        }
        fresh.flush_delta();
        // `flush_delta` unshared the base only if a delta existed;
        // force the copy now either way so the caller's edit never
        // touches the published snapshot.
        let _ = Arc::make_mut(&mut fresh.data);
        self.writes.leaf_clones.fetch_add(1, Ordering::Relaxed);
        self.maybe_adapt();
    }

    /// The `DeltaBuffer::Adaptive` controller (see the module docs).
    /// Runs at flush boundaries only — the caller holds the writer
    /// mutex and an epoch pin, so the snapshot state in `self.tuner`
    /// needs no further synchronization. Every
    /// [`ADAPT_FLUSH_INTERVAL`] flushes it compares the window's
    /// observed clone rate against [`TARGET_CLONES_PER_WRITE`] and
    /// doubles or halves the cap within the configured clamps.
    #[cfg(feature = "read-stats")]
    fn maybe_adapt(&self) {
        if !self.tuner.enabled {
            return;
        }
        let stats = self.writes.snapshot();
        let last_flushes = self.tuner.last_flushes.load(Ordering::Relaxed);
        if stats.flushes.saturating_sub(last_flushes) < ADAPT_FLUSH_INTERVAL {
            return;
        }
        let clones = stats.leaf_clones - self.tuner.last_leaf_clones.load(Ordering::Relaxed);
        let hits = stats.delta_hits - self.tuner.last_delta_hits.load(Ordering::Relaxed);
        let (lookups, _, _) = self.index.read_stats();
        let window_lookups = lookups.saturating_sub(self.tuner.last_lookups.load(Ordering::Relaxed));
        // Every point write is either a delta hit or part of a clone,
        // so the window's write count is their sum. (A bulk_insert run
        // counts as one clone for the whole run — batch traffic thus
        // reads as clone-heavy and keeps the cap from shrinking, which
        // is the conservative direction.)
        let writes = clones + hits;
        self.tuner.last_flushes.store(stats.flushes, Ordering::Relaxed);
        self.tuner.last_leaf_clones.store(stats.leaf_clones, Ordering::Relaxed);
        self.tuner.last_delta_hits.store(stats.delta_hits, Ordering::Relaxed);
        self.tuner.last_lookups.store(lookups, Ordering::Relaxed);
        if writes == 0 {
            return;
        }
        let observed = clones as f64 / writes as f64;
        let cap = self.delta_cap.load(Ordering::Relaxed);
        let next = if observed > 1.5 * TARGET_CLONES_PER_WRITE {
            (cap * 2).min(crate::config::MAX_ADAPTIVE_DELTA_CAPACITY)
        } else if observed < 0.5 * TARGET_CLONES_PER_WRITE && window_lookups > writes {
            (cap / 2).max(crate::config::MIN_ADAPTIVE_DELTA_CAPACITY)
        } else {
            cap
        };
        if next != cap {
            self.delta_cap.store(next, Ordering::Relaxed);
            self.tuner.adaptations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Without the `read-stats` feature the lookup counters read zero,
    /// so the controller would have no read-traffic signal; `Adaptive`
    /// degrades to the static default capacity.
    #[cfg(not(feature = "read-stats"))]
    fn maybe_adapt(&self) {}

    // ------------------------------------------------------------------
    // Diagnostics
    // ------------------------------------------------------------------

    /// Current reclamation counters (see [`EpochStats`]).
    pub fn epoch_stats(&self) -> EpochStats {
        let (retired_total, freed_total) = self.index.store.reclamation_totals();
        EpochStats {
            global_epoch: self.index.store.collector().global_epoch(),
            pending: self.index.store.retired(),
            retired_total,
            freed_total,
        }
    }

    /// Write-amplification counters (see [`EpochWriteStats`]): how
    /// many writes the delta buffers absorbed versus how many full
    /// leaf copies the path paid.
    pub fn write_stats(&self) -> EpochWriteStats {
        self.writes.snapshot()
    }

    /// Drive epochs forward until the retire list drains (or a pinned
    /// reader blocks progress); returns the nodes still pending. At
    /// quiescence this reaches 0 — asserted by the concurrency suite.
    pub fn flush_retired(&self) -> usize {
        let _writer = self.write_lock();
        self.index.store.flush()
    }
}

// ----------------------------------------------------------------------
// alex-api surface
// ----------------------------------------------------------------------

impl<K: AlexKey, V: Clone + Default> IndexRead<K, V> for EpochAlex<K, V> {
    fn get(&self, key: &K) -> Option<V> {
        EpochAlex::get(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        EpochAlex::contains(self, key)
    }

    fn scan_from(&self, key: &K, limit: usize, visit: &mut dyn FnMut(&K, &V)) -> usize {
        EpochAlex::scan_from(self, key, limit, |k, v| visit(k, v))
    }

    fn len(&self) -> usize {
        EpochAlex::len(self)
    }

    fn index_size_bytes(&self) -> usize {
        self.size_report().index_bytes
    }

    fn data_size_bytes(&self) -> usize {
        self.size_report().data_bytes
    }

    fn label(&self) -> String {
        format!("{}+epoch", self.config().variant_name())
    }
}

impl<K, V> ConcurrentIndex<K, V> for EpochAlex<K, V>
where
    K: AlexKey + Send + Sync,
    V: Clone + Default + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> Result<(), InsertError> {
        EpochAlex::insert(self, key, value)
    }

    fn remove(&self, key: &K) -> Option<V> {
        EpochAlex::remove(self, key)
    }

    fn bulk_insert(&self, pairs: &[(K, V)]) -> Result<usize, InsertError>
    where
        K: Clone,
        V: Clone,
    {
        // Native run-level path: one clone + publication per leaf run.
        EpochAlex::bulk_insert(self, pairs)
    }
}

// Exclusive-access delegation (see `alex-api`'s crate docs for why a
// blanket impl cannot provide this).
impl<K, V> IndexWrite<K, V> for EpochAlex<K, V>
where
    K: AlexKey + Send + Sync,
    V: Clone + Default + Send + Sync,
{
    fn insert(&mut self, key: K, value: V) -> Result<(), InsertError> {
        ConcurrentIndex::insert(self, key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        ConcurrentIndex::remove(self, key)
    }

    fn bulk_load(&mut self, pairs: &[(K, V)]) -> Result<usize, InsertError> {
        debug_assert!(self.is_empty(), "bulk_load expects an empty index");
        if pairs.last().is_some_and(|(k, _)| k.is_sentinel()) {
            return Err(InsertError::UnsupportedKey);
        }
        // Exclusive access: rebuild via Algorithm 4 with the same
        // config (fresh arena, empty retire lists). The rebuild honors
        // `config.store_mode` (dense by default), so upgrade the fresh
        // arena before it becomes shared again.
        self.index = AlexIndex::bulk_load(pairs, *self.index.config());
        self.index.store.ensure_epoch();
        Ok(pairs.len())
    }
}

impl<K, V> BatchOps<K, V> for EpochAlex<K, V>
where
    K: AlexKey + Send + Sync,
    V: Clone + Default + Send + Sync,
{
    fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        EpochAlex::get_many(self, keys)
    }

    fn bulk_insert(&mut self, pairs: &[(K, V)]) -> Result<usize, InsertError> {
        // Exclusive access still routes through the shared run-level
        // path (it is equivalent and keeps the counters meaningful).
        EpochAlex::bulk_insert(self, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: u64, stride: u64) -> Vec<(u64, u64)> {
        (0..n).map(|k| (k * stride, k)).collect()
    }

    fn splitting_config() -> AlexConfig {
        AlexConfig::ga_armi().with_max_node_keys(128).with_splitting()
    }

    #[test]
    fn shared_writes_round_trip() {
        let index = EpochAlex::bulk_load(&pairs(2000, 2), splitting_config());
        assert_eq!(index.get(&200), Some(100));
        assert!(index.insert(201, 7).is_ok());
        assert!(index.insert(201, 8).is_err(), "duplicate must be rejected");
        assert_eq!(index.get(&201), Some(7));
        assert_eq!(index.update(&201, 9), Some(7));
        assert_eq!(index.remove(&201), Some(9));
        assert_eq!(index.remove(&201), None);
        assert_eq!(index.len(), 2000);
        assert_eq!(index.flush_retired(), 0);
    }

    #[test]
    fn shared_inserts_trigger_published_splits() {
        let index: EpochAlex<u64, u64> = EpochAlex::new(splitting_config());
        for k in 0..5000u64 {
            index.insert(k, k * 3).unwrap();
        }
        assert_eq!(index.len(), 5000);
        for k in (0..5000u64).step_by(13) {
            assert_eq!(index.get(&k), Some(k * 3), "key {k}");
        }
        let mut seen = Vec::new();
        index.scan_from(&0, usize::MAX, |k, _| seen.push(*k));
        assert_eq!(seen, (0..5000).collect::<Vec<_>>());
        let stats = index.epoch_stats();
        assert!(stats.retired_total > 0, "splits must retire replaced nodes");
        assert_eq!(index.flush_retired(), 0);
        let stats = index.epoch_stats();
        assert_eq!(stats.retired_total, stats.freed_total);
    }

    #[test]
    fn sentinel_rejected_on_shared_paths() {
        let index = EpochAlex::bulk_load(&pairs(100, 2), AlexConfig::ga_armi());
        assert_eq!(index.insert(u64::MAX, 1), Err(InsertError::UnsupportedKey));
        assert_eq!(
            index.bulk_insert(&[(7, 7), (u64::MAX, 1)]),
            Err(InsertError::UnsupportedKey)
        );
        assert_eq!(index.get(&7), None, "rejected batch must apply nothing");
        assert_eq!(index.len(), 100);
    }

    #[test]
    fn point_inserts_are_delta_buffered() {
        let n = 8192u64;
        let index = EpochAlex::bulk_load(&pairs(n, 2), AlexConfig::ga_armi());
        for k in 0..n {
            index.insert(2 * k + 1, k).unwrap();
        }
        let stats = index.write_stats();
        assert_eq!(
            stats.delta_hits + stats.leaf_clones,
            n,
            "every point insert is a delta hit or part of a clone"
        );
        assert!(
            stats.delta_hits > stats.flushes,
            "buffers must absorb more writes than they flush: {stats:?}"
        );
        assert!(
            stats.leaf_clones * 8 < n,
            "amortization: clones ({}) must be far below inserts ({n})",
            stats.leaf_clones
        );
        for k in (0..2 * n).step_by(97) {
            assert_eq!(index.get(&k), Some(if k % 2 == 0 { k / 2 } else { (k - 1) / 2 }));
        }
    }

    #[test]
    fn capacity_zero_disables_buffering() {
        let index = EpochAlex::bulk_load(&pairs(512, 2), AlexConfig::ga_armi().with_delta_buffer(0));
        for k in 0..256u64 {
            index.insert(2 * k + 1, k).unwrap();
        }
        let stats = index.write_stats();
        assert_eq!(stats.delta_hits, 0);
        assert_eq!(stats.flushes, 0);
        assert_eq!(stats.leaf_clones, 256, "cap 0: every write clones the leaf");
        assert_eq!(index.len(), 768);
    }

    #[test]
    fn bulk_insert_clones_once_per_run() {
        let n = 4096u64;
        let index = EpochAlex::bulk_load(&pairs(n, 2), AlexConfig::ga_armi());
        let batch: Vec<(u64, u64)> = (0..n).map(|k| (2 * k + 1, k)).collect();
        assert_eq!(index.bulk_insert(&batch), Ok(n as usize));
        let stats = index.write_stats();
        let leaves = index.size_report().num_data_nodes as u64;
        assert!(
            stats.leaf_clones <= leaves,
            "run-level CoW: clones ({}) bounded by leaf count ({leaves}), not keys ({n})",
            stats.leaf_clones
        );
        assert_eq!(index.len(), 2 * n as usize);
        assert_eq!(index.get_many(&batch.iter().map(|p| p.0).collect::<Vec<_>>()),
            batch.iter().map(|p| Some(p.1)).collect::<Vec<_>>());
    }

    #[test]
    fn all_duplicate_runs_publish_nothing() {
        let index = EpochAlex::bulk_load(&pairs(4096, 2), AlexConfig::ga_armi());
        let batch: Vec<(u64, u64)> = (0..4096).map(|k| (2 * k + 1, k)).collect();
        assert_eq!(index.bulk_insert(&batch), Ok(4096));
        let clones = index.write_stats().leaf_clones;
        let retired = index.epoch_stats().retired_total;
        // Replaying the identical batch is a no-op: no clones, no
        // publications, no retirements.
        assert_eq!(index.bulk_insert(&batch), Ok(0));
        assert_eq!(index.write_stats().leaf_clones, clones);
        assert_eq!(index.epoch_stats().retired_total, retired);
        assert_eq!(index.len(), 8192);
    }

    #[test]
    fn bulk_insert_folds_pending_deltas() {
        let index = EpochAlex::bulk_load(&pairs(1024, 4), AlexConfig::ga_armi());
        // Seed some buffered state first.
        for k in 0..8u64 {
            index.insert(4 * k + 1, k).unwrap();
        }
        index.remove(&0).unwrap();
        let batch: Vec<(u64, u64)> = (0..1024).map(|k| (4 * k + 2, k)).collect();
        assert_eq!(index.bulk_insert(&batch), Ok(1024));
        assert_eq!(index.get(&0), None, "buffered remove survives the batch");
        assert_eq!(index.get(&1), Some(0), "buffered insert survives the batch");
        assert_eq!(index.get(&2), Some(0));
        assert_eq!(index.len(), 1024 + 8 - 1 + 1024);
        assert_eq!(index.flush_retired(), 0);
    }

    #[test]
    fn readers_race_split_inducing_writers() {
        let index = EpochAlex::bulk_load(&pairs(8000, 2), splitting_config());
        std::thread::scope(|s| {
            let idx = &index;
            s.spawn(move || {
                for k in 0..8000u64 {
                    idx.insert(k * 2 + 1, k).unwrap();
                }
            });
            for _ in 0..2 {
                s.spawn(move || {
                    for round in 0..3 {
                        for k in (0..8000u64).step_by(7) {
                            assert_eq!(idx.get(&(k * 2)), Some(k), "stable key {k} round {round}");
                        }
                        let mut last = None;
                        idx.scan_from(&4000, 300, |k, _| {
                            assert!(last.is_none_or(|p| p < *k), "scan out of order");
                            last = Some(*k);
                        });
                    }
                });
            }
        });
        assert_eq!(index.len(), 16_000);
        assert_eq!(index.flush_retired(), 0, "retire lists must drain at quiescence");
        let stats = index.epoch_stats();
        assert_eq!(stats.retired_total, stats.freed_total);
    }

    #[test]
    fn get_many_matches_point_gets_under_shared_use() {
        let index = EpochAlex::bulk_load(&pairs(3000, 3), splitting_config());
        let queries: Vec<u64> = (0..9000u64).step_by(2).collect();
        let batch = index.get_many(&queries);
        for (q, got) in queries.iter().zip(&batch) {
            assert_eq!(*got, index.get(q), "key {q}");
        }
    }

    #[test]
    fn into_inner_flushes_deltas() {
        let index = EpochAlex::bulk_load(&pairs(1000, 2), AlexConfig::ga_armi());
        for k in 0..100u64 {
            index.insert(2 * k + 1, k).unwrap();
        }
        index.remove(&0).unwrap();
        index.update(&2, 999).unwrap();
        assert!(index.write_stats().delta_hits > 0, "test needs buffered state");
        let inner = index.into_inner();
        assert_eq!(inner.len(), 1099);
        assert_eq!(inner.get(&0), None);
        assert_eq!(inner.get(&2), Some(&999));
        assert_eq!(inner.get(&1), Some(&0));
        inner.debug_assert_invariants();
    }

    /// A payload whose `Clone` panics while armed — lets a test unwind
    /// inside a writer at a controlled point.
    #[derive(Debug, Default)]
    struct Grenade {
        armed: Arc<core::sync::atomic::AtomicBool>,
    }

    impl Clone for Grenade {
        fn clone(&self) -> Self {
            assert!(
                !self.armed.load(Ordering::SeqCst),
                "armed payload cloned inside a writer (intentional test panic)"
            );
            Self { armed: Arc::clone(&self.armed) }
        }
    }

    #[test]
    fn poisoned_writer_mutex_does_not_wedge_later_writes() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let index: EpochAlex<u64, Grenade> = EpochAlex::new(AlexConfig::ga_armi());
        let armed = Arc::new(core::sync::atomic::AtomicBool::new(false));
        index.insert(1, Grenade { armed: Arc::clone(&armed) }).unwrap();
        // `remove` clones the evicted payload while holding the writer
        // mutex; arming the grenade makes that clone unwind, poisoning
        // the mutex before any mutation is published.
        armed.store(true, Ordering::SeqCst);
        let unwound = catch_unwind(AssertUnwindSafe(|| index.remove(&1))).is_err();
        assert!(unwound, "the armed payload must panic inside the writer");
        armed.store(false, Ordering::SeqCst);
        // The panic hit before publication, so the tree is unchanged…
        assert!(index.contains(&1), "unwound remove must not have landed");
        // …and, the regression: writes after the poisoning still work.
        index.insert(2, Grenade::default()).unwrap();
        assert!(index.contains(&2));
        assert!(index.remove(&1).is_some());
        assert!(!index.contains(&1));
        assert_eq!(index.len(), 1);
        assert_eq!(index.flush_retired(), 0);
    }

    #[test]
    fn into_concurrent_round_trip_restores_dense_arena() {
        use crate::config::StoreMode;
        // Default config builds dense; wrapping upgrades to epoch.
        let index = AlexIndex::bulk_load(&pairs(2000, 2), splitting_config());
        assert_eq!(index.store.mode(), StoreMode::Dense);
        let shared = index.into_concurrent();
        assert_eq!(shared.index.store.mode(), StoreMode::Epoch);
        std::thread::scope(|s| {
            let idx = &shared;
            s.spawn(move || {
                for k in 0..500u64 {
                    idx.insert(2 * k + 1, k).unwrap();
                }
            });
            s.spawn(move || {
                for k in (0..2000u64).step_by(11) {
                    assert_eq!(idx.get(&(2 * k)), Some(k));
                }
            });
        });
        let mut back = shared.into_inner();
        assert_eq!(back.store.mode(), StoreMode::Dense, "into_inner must restore config.store_mode");
        assert_eq!(back.len(), 2500);
        assert_eq!(back.get(&1), Some(&0));
        back.insert(999_999, 42).unwrap();
        assert_eq!(back.get(&999_999), Some(&42));
        back.debug_assert_invariants();

        // An index pinned to the epoch flavour stays epoch after unwrap.
        let cfg = splitting_config().with_store_mode(StoreMode::Epoch);
        let index: AlexIndex<u64, u64> = AlexIndex::bulk_load(&pairs(100, 2), cfg);
        assert_eq!(index.store.mode(), StoreMode::Epoch);
        let back = index.into_concurrent().into_inner();
        assert_eq!(back.store.mode(), StoreMode::Epoch);
    }

    #[test]
    fn index_write_bulk_load_stays_epoch() {
        let mut index: EpochAlex<u64, u64> = EpochAlex::new(AlexConfig::ga_armi());
        let data = pairs(1000, 2);
        assert_eq!(IndexWrite::bulk_load(&mut index, &data), Ok(1000));
        assert_eq!(index.index.store.mode(), crate::config::StoreMode::Epoch);
        // The shared read/write paths (pin + publish) must still work.
        assert_eq!(index.get(&200), Some(100));
        index.insert(201, 7).unwrap();
        assert_eq!(index.get(&201), Some(7));
        assert_eq!(index.flush_retired(), 0);
    }

    #[test]
    fn leaf_snapshots_yield_merged_state_in_key_order() {
        let index = EpochAlex::bulk_load(&pairs(2000, 2), splitting_config());
        for k in 0..200u64 {
            index.insert(2 * k + 1, k).unwrap();
        }
        index.remove(&0).unwrap();
        index.update(&2, 999).unwrap();
        let mut all = Vec::new();
        let mut leaves = 0usize;
        index.leaf_snapshots(|leaf| {
            leaves += 1;
            all.extend_from_slice(leaf);
        });
        assert!(leaves > 1, "splitting config must produce a leaf chain");
        assert!(
            all.windows(2).all(|w| w[0].0 < w[1].0),
            "keys must stay strictly increasing across the whole walk"
        );
        assert_eq!(all.len(), index.len());
        assert_eq!(all.iter().find(|(k, _)| *k == 2).map(|(_, v)| *v), Some(999));
        assert!(!all.iter().any(|(k, _)| *k == 0), "removed key must not appear");
        for (k, v) in all.iter().step_by(37) {
            assert_eq!(index.get(k), Some(*v), "key {k}");
        }
    }
}
