//! [`EpochAlex`]: an internally synchronized ALEX whose readers never
//! block.
//!
//! The wrapper pairs the plain [`AlexIndex`] with the epoch machinery
//! the storage layer grew ([`crate::epoch`]):
//!
//! - **Reads** (`get`, `get_many`, `scan_from`, stats) pin an epoch
//!   and descend the RMI on loaded snapshots. They take no lock, are
//!   wait-free with respect to splits, and return **owned** values
//!   (cloned out while pinned — a reference must never outlive its
//!   guard).
//! - **Writes** (`insert`, `remove`, `update`, `bulk_insert`)
//!   serialize on an internal mutex — mutual exclusion among writers
//!   only — and never mutate a reachable node: every change clones the
//!   owning leaf, applies the edit, and *publishes* the replacement at
//!   the same id, retiring the old node to the epoch garbage list.
//!   Splits publish a routing inner node at the old leaf's id as a
//!   single atomic step (see [`super::split`]).
//!
//! ## Why a pinned reader can never observe a freed node
//!
//! A reader pins the global epoch `e` before loading any pointer, and
//! every pointer it loads was reachable at some instant while pinned.
//! A writer retires a node at the epoch current at replacement, and
//! the node is freed only once the global epoch has advanced **two**
//! steps past that — each advance requiring every pinned reader to
//! have observed the epoch being left. Any reader that could have
//! loaded the pointer is therefore unpinned before the free; any
//! reader pinned later can only load the replacement. The full
//! argument lives in the [`crate::epoch`] module docs; the
//! `tests/epoch_concurrency.rs` suite stresses it and checks that the
//! retire lists drain to zero at quiescence.
//!
//! ## Consistency model
//!
//! Point reads are atomic (a leaf snapshot is immutable). Scans walk
//! one leaf snapshot at a time, so a scan concurrent with writes sees
//! each leaf at a possibly different instant — keys stay strictly
//! increasing, and every observed payload was live at some point. This
//! is the same relaxation `ShardedAlex` already documents across
//! shards.
//!
//! ```
//! use alex_core::{AlexConfig, EpochAlex};
//!
//! let data: Vec<(u64, u64)> = (0..10_000).map(|k| (k * 2, k)).collect();
//! let index = EpochAlex::bulk_load(&data, AlexConfig::ga_armi().with_splitting());
//!
//! // Reads and writes both take &self: share freely across threads.
//! std::thread::scope(|s| {
//!     s.spawn(|| assert_eq!(index.get(&4000), Some(2000)));
//!     s.spawn(|| assert!(index.insert(4001, 99).is_ok()));
//! });
//! assert_eq!(index.get(&4001), Some(99));
//! // At quiescence every retired node can be reclaimed.
//! assert_eq!(index.flush_retired(), 0);
//! ```

use std::sync::{Mutex, MutexGuard};

use alex_api::{BatchOps, ConcurrentIndex, IndexRead, IndexWrite, InsertError};

use crate::config::{AlexConfig, RmiMode};
use crate::gapped::InsertOutcome;
use crate::key::AlexKey;
use crate::stats::SizeReport;

use super::store::Node;
use super::{AlexIndex, DuplicateKey};
use core::sync::atomic::Ordering;

/// An [`AlexIndex`] with lock-free, epoch-protected readers and
/// mutex-serialized copy-on-write writers. The protocol and
/// consistency model are documented on this type's source module and
/// in [`crate::epoch`].
///
/// The wrapped index is never exposed by reference: unprotected
/// `&AlexIndex` reads racing this type's writers would be unsound.
/// Use [`EpochAlex::into_inner`] to get the index back once
/// concurrency is over.
#[derive(Debug)]
pub struct EpochAlex<K, V> {
    index: AlexIndex<K, V>,
    /// Mutual exclusion among writers only; readers never touch it.
    writer: Mutex<()>,
}

/// Reclamation diagnostics for one [`EpochAlex`] (or one shard).
///
/// At quiescence, after [`EpochAlex::flush_retired`], `pending == 0`
/// and `retired_total == freed_total`: every retired node was freed
/// exactly once (no leak, no double-retire).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Current global epoch of the index's collector.
    pub global_epoch: u64,
    /// Retired-but-not-yet-freed nodes.
    pub pending: usize,
    /// Nodes ever retired.
    pub retired_total: u64,
    /// Nodes ever freed.
    pub freed_total: u64,
}

impl<K: AlexKey, V: Clone + Default> EpochAlex<K, V> {
    /// An empty index (cold start; grows by inserts/splits).
    pub fn new(config: AlexConfig) -> Self {
        Self::from_index(AlexIndex::new(config))
    }

    /// Bulk-load from sorted, strictly-increasing pairs.
    pub fn bulk_load(pairs: &[(K, V)], config: AlexConfig) -> Self {
        Self::from_index(AlexIndex::bulk_load(pairs, config))
    }

    /// Wrap an existing index (built exclusively, e.g. by
    /// [`AlexIndex::bulk_load`]) for shared use.
    pub fn from_index(index: AlexIndex<K, V>) -> Self {
        Self {
            index,
            writer: Mutex::new(()),
        }
    }

    /// Unwrap back into the exclusive index (consumes `self`, so no
    /// reader or writer can still be active).
    pub fn into_inner(self) -> AlexIndex<K, V> {
        self.index
    }

    fn write_lock(&self) -> MutexGuard<'_, ()> {
        self.writer.lock().expect("writer mutex poisoned")
    }

    // ------------------------------------------------------------------
    // Lock-free reads
    // ------------------------------------------------------------------

    /// Look up `key`, cloning the payload out while pinned. Never
    /// blocks, even while a writer splits the owning leaf.
    pub fn get(&self, key: &K) -> Option<V> {
        let _guard = self.index.store.pin();
        self.index.get(key).cloned()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let _guard = self.index.store.pin();
        self.index.get(key).is_some()
    }

    /// Visit up to `limit` entries with key `>= key` in order. The
    /// walk reads one leaf snapshot at a time (see the module docs'
    /// consistency model). Returns the number of entries visited.
    pub fn scan_from(&self, key: &K, limit: usize, f: impl FnMut(&K, &V)) -> usize {
        let _guard = self.index.store.pin();
        self.index.scan_from(key, limit, f)
    }

    /// Sorted-batch lookup (one epoch pin for the whole batch),
    /// cloning payloads out.
    ///
    /// # Panics
    /// Panics (debug builds) if `keys` is not sorted non-decreasing.
    pub fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        let _guard = self.index.store.pin();
        self.index.get_many(keys).into_iter().map(|v| v.cloned()).collect()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configuration the wrapped index was built with.
    pub fn config(&self) -> &AlexConfig {
        self.index.config()
    }

    /// §5.1 size accounting. Pinned like any other read; counts may be
    /// transiently off by one node while a concurrent split publishes.
    pub fn size_report(&self) -> SizeReport {
        let _guard = self.index.store.pin();
        self.index.size_report()
    }

    // ------------------------------------------------------------------
    // Serialized copy-on-write writes
    // ------------------------------------------------------------------

    /// Insert a pair. Errors on duplicates; the stored value is left
    /// unchanged.
    pub fn insert(&self, key: K, value: V) -> Result<(), DuplicateKey> {
        let _writer = self.write_lock();
        self.insert_locked(key, value)
    }

    /// Remove `key`, returning its payload.
    pub fn remove(&self, key: &K) -> Option<V> {
        let _writer = self.write_lock();
        let _guard = self.index.store.pin();
        let (id, leaf) = self.index.route_to_leaf(key);
        // Absent keys need no copy-on-write round trip.
        leaf.data.get(key)?;
        let mut fresh = leaf.clone();
        let evicted = fresh.data.remove(key)?;
        self.index.store.publish(id, Node::Leaf(fresh));
        self.index.len.fetch_sub(1, Ordering::Relaxed);
        Some(evicted)
    }

    /// Replace the payload of an existing key, returning the old
    /// value.
    pub fn update(&self, key: &K, value: V) -> Option<V> {
        let _writer = self.write_lock();
        let _guard = self.index.store.pin();
        let (id, leaf) = self.index.route_to_leaf(key);
        leaf.data.get(key)?;
        let mut fresh = leaf.clone();
        let slot = fresh.data.get_mut(key)?;
        let old = core::mem::replace(slot, value);
        self.index.store.publish(id, Node::Leaf(fresh));
        Some(old)
    }

    /// Sorted-batch insert (one writer-lock acquisition for the whole
    /// batch). Duplicates are skipped; returns the number inserted.
    ///
    /// # Panics
    /// Panics (debug builds) if `pairs` is not sorted by key.
    pub fn bulk_insert(&self, pairs: &[(K, V)]) -> usize {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_insert input must be sorted by key"
        );
        let _writer = self.write_lock();
        pairs
            .iter()
            .filter(|(k, v)| self.insert_locked(*k, v.clone()).is_ok())
            .count()
    }

    /// The insert core; caller holds the writer mutex.
    fn insert_locked(&self, key: K, value: V) -> Result<(), DuplicateKey> {
        let _guard = self.index.store.pin();
        loop {
            let (id, leaf) = self.index.route_to_leaf(&key);
            if leaf.data.get(&key).is_some() {
                return Err(DuplicateKey);
            }
            // Split-on-insert, published atomically; re-route after.
            if let RmiMode::Adaptive {
                max_node_keys,
                split_on_insert: true,
                split_fanout,
                ..
            } = self.index.config().rmi
            {
                if leaf.data.num_keys() + 1 > max_node_keys
                    && self.index.split_leaf_shared(id, split_fanout.max(2))
                {
                    continue;
                }
            }
            // Copy-on-write: readers see the old leaf or the new one,
            // never an intermediate state.
            let mut fresh = leaf.clone();
            return match fresh.data.insert(key, value) {
                InsertOutcome::Inserted { .. } => {
                    self.index.store.publish(id, Node::Leaf(fresh));
                    self.index.len.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
                InsertOutcome::Duplicate => Err(DuplicateKey),
            };
        }
    }

    // ------------------------------------------------------------------
    // Reclamation diagnostics
    // ------------------------------------------------------------------

    /// Current reclamation counters (see [`EpochStats`]).
    pub fn epoch_stats(&self) -> EpochStats {
        let (retired_total, freed_total) = self.index.store.reclamation_totals();
        EpochStats {
            global_epoch: self.index.store.collector().global_epoch(),
            pending: self.index.store.retired(),
            retired_total,
            freed_total,
        }
    }

    /// Drive epochs forward until the retire list drains (or a pinned
    /// reader blocks progress); returns the nodes still pending. At
    /// quiescence this reaches 0 — asserted by the concurrency suite.
    pub fn flush_retired(&self) -> usize {
        let _writer = self.write_lock();
        self.index.store.flush()
    }
}

// ----------------------------------------------------------------------
// alex-api surface
// ----------------------------------------------------------------------

impl<K: AlexKey, V: Clone + Default> IndexRead<K, V> for EpochAlex<K, V> {
    fn get(&self, key: &K) -> Option<V> {
        EpochAlex::get(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        EpochAlex::contains(self, key)
    }

    fn scan_from(&self, key: &K, limit: usize, visit: &mut dyn FnMut(&K, &V)) -> usize {
        EpochAlex::scan_from(self, key, limit, |k, v| visit(k, v))
    }

    fn len(&self) -> usize {
        EpochAlex::len(self)
    }

    fn index_size_bytes(&self) -> usize {
        self.size_report().index_bytes
    }

    fn data_size_bytes(&self) -> usize {
        self.size_report().data_bytes
    }

    fn label(&self) -> String {
        format!("{}+epoch", self.config().variant_name())
    }
}

impl<K, V> ConcurrentIndex<K, V> for EpochAlex<K, V>
where
    K: AlexKey + Send + Sync,
    V: Clone + Default + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> Result<(), InsertError> {
        EpochAlex::insert(self, key, value).map_err(InsertError::from)
    }

    fn remove(&self, key: &K) -> Option<V> {
        EpochAlex::remove(self, key)
    }
}

// Exclusive-access delegation (see `alex-api`'s crate docs for why a
// blanket impl cannot provide this).
impl<K, V> IndexWrite<K, V> for EpochAlex<K, V>
where
    K: AlexKey + Send + Sync,
    V: Clone + Default + Send + Sync,
{
    fn insert(&mut self, key: K, value: V) -> Result<(), InsertError> {
        ConcurrentIndex::insert(self, key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        ConcurrentIndex::remove(self, key)
    }

    fn bulk_load(&mut self, pairs: &[(K, V)]) -> usize {
        debug_assert!(self.is_empty(), "bulk_load expects an empty index");
        // Exclusive access: rebuild via Algorithm 4 with the same
        // config (fresh arena, empty retire lists).
        self.index = AlexIndex::bulk_load(pairs, *self.index.config());
        pairs.len()
    }
}

impl<K, V> BatchOps<K, V> for EpochAlex<K, V>
where
    K: AlexKey + Send + Sync,
    V: Clone + Default + Send + Sync,
{
    fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        EpochAlex::get_many(self, keys)
    }

    fn bulk_insert(&mut self, pairs: &[(K, V)]) -> usize {
        // Exclusive access: take the native in-place sorted-run path.
        self.index.bulk_insert(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: u64, stride: u64) -> Vec<(u64, u64)> {
        (0..n).map(|k| (k * stride, k)).collect()
    }

    fn splitting_config() -> AlexConfig {
        AlexConfig::ga_armi().with_max_node_keys(128).with_splitting()
    }

    #[test]
    fn shared_writes_round_trip() {
        let index = EpochAlex::bulk_load(&pairs(2000, 2), splitting_config());
        assert_eq!(index.get(&200), Some(100));
        assert!(index.insert(201, 7).is_ok());
        assert!(index.insert(201, 8).is_err(), "duplicate must be rejected");
        assert_eq!(index.get(&201), Some(7));
        assert_eq!(index.update(&201, 9), Some(7));
        assert_eq!(index.remove(&201), Some(9));
        assert_eq!(index.remove(&201), None);
        assert_eq!(index.len(), 2000);
        assert_eq!(index.flush_retired(), 0);
    }

    #[test]
    fn shared_inserts_trigger_published_splits() {
        let index: EpochAlex<u64, u64> = EpochAlex::new(splitting_config());
        for k in 0..5000u64 {
            index.insert(k, k * 3).unwrap();
        }
        assert_eq!(index.len(), 5000);
        for k in (0..5000u64).step_by(13) {
            assert_eq!(index.get(&k), Some(k * 3), "key {k}");
        }
        let mut seen = Vec::new();
        index.scan_from(&0, usize::MAX, |k, _| seen.push(*k));
        assert_eq!(seen, (0..5000).collect::<Vec<_>>());
        let stats = index.epoch_stats();
        assert!(stats.retired_total > 0, "splits must retire replaced nodes");
        assert_eq!(index.flush_retired(), 0);
        let stats = index.epoch_stats();
        assert_eq!(stats.retired_total, stats.freed_total);
    }

    #[test]
    fn readers_race_split_inducing_writers() {
        let index = EpochAlex::bulk_load(&pairs(8000, 2), splitting_config());
        std::thread::scope(|s| {
            let idx = &index;
            s.spawn(move || {
                for k in 0..8000u64 {
                    idx.insert(k * 2 + 1, k).unwrap();
                }
            });
            for _ in 0..2 {
                s.spawn(move || {
                    for round in 0..3 {
                        for k in (0..8000u64).step_by(7) {
                            assert_eq!(idx.get(&(k * 2)), Some(k), "stable key {k} round {round}");
                        }
                        let mut last = None;
                        idx.scan_from(&4000, 300, |k, _| {
                            assert!(last.is_none_or(|p| p < *k), "scan out of order");
                            last = Some(*k);
                        });
                    }
                });
            }
        });
        assert_eq!(index.len(), 16_000);
        assert_eq!(index.flush_retired(), 0, "retire lists must drain at quiescence");
        let stats = index.epoch_stats();
        assert_eq!(stats.retired_total, stats.freed_total);
    }

    #[test]
    fn get_many_matches_point_gets_under_shared_use() {
        let index = EpochAlex::bulk_load(&pairs(3000, 3), splitting_config());
        let queries: Vec<u64> = (0..9000u64).step_by(2).collect();
        let batch = index.get_many(&queries);
        for (q, got) in queries.iter().zip(&batch) {
            assert_eq!(*got, index.get(q), "key {q}");
        }
    }
}
