//! Range iteration across the leaf chain.
//!
//! Scans walk occupied slots within a leaf (skipping gaps via the
//! bitmap, §5.2.3) and follow the doubly-linked leaf chain to the next
//! data node.

use crate::index::{AlexIndex, NodeId};
use crate::key::AlexKey;

/// Iterator over `(key, value)` pairs in key order, produced by
/// [`AlexIndex::range_from`] and [`AlexIndex::iter`].
///
/// Yields the *merged* view of each leaf: base-array entries
/// interleaved with pending delta-buffer edits (tombstones hide base
/// entries, buffered puts insert or shadow them). Outside the shared
/// write path deltas are empty and this degenerates to the plain
/// base-array walk.
pub struct RangeIter<'a, K, V> {
    index: &'a AlexIndex<K, V>,
    leaf: Option<NodeId>,
    /// Next base slot to inspect in the current leaf (may be a gap or
    /// past the end; normalized by the leaf's merge step).
    slot: usize,
    /// Next delta-buffer index to consider in the current leaf.
    didx: usize,
    remaining: usize,
}

impl<'a, K: AlexKey, V: Clone + Default> RangeIter<'a, K, V> {
    pub(crate) fn new(
        index: &'a AlexIndex<K, V>,
        leaf: NodeId,
        slot: usize,
        didx: usize,
        remaining: usize,
    ) -> Self {
        Self {
            index,
            leaf: Some(leaf),
            slot,
            didx,
            remaining,
        }
    }
}

impl<'a, K: AlexKey, V: Clone + Default> Iterator for RangeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        loop {
            let leaf_id = self.leaf?;
            // A chain pointer may name a slot that a split replaced
            // with its routing inner node; normalize to the leftmost
            // leaf of the replacement (same key range, so order is
            // preserved).
            let (actual_id, leaf) = self.index.descend_first_leaf(leaf_id);
            if actual_id != leaf_id {
                self.leaf = Some(actual_id);
            }
            if let Some(((k, v), slot, didx)) = leaf.merged_next(self.slot, self.didx) {
                self.slot = slot;
                self.didx = didx;
                self.remaining -= 1;
                return Some((k, v));
            }
            self.leaf = leaf.next;
            self.slot = 0;
            self.didx = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::AlexConfig;
    use crate::index::AlexIndex;

    #[test]
    fn iterates_across_leaf_boundaries() {
        let data: Vec<(u64, u64)> = (0..5000).map(|k| (k, k)).collect();
        let index = AlexIndex::bulk_load(&data, AlexConfig::ga_armi().with_max_node_keys(256));
        assert!(index.num_data_nodes() > 1, "test requires multiple leaves");
        let all: Vec<u64> = index.iter().map(|(k, _)| *k).collect();
        assert_eq!(all, (0..5000).collect::<Vec<_>>());
    }

    #[test]
    fn range_iter_respects_limit_exactly() {
        let data: Vec<(u64, u64)> = (0..1000).map(|k| (k * 2, k)).collect();
        let index = AlexIndex::bulk_load(&data, AlexConfig::ga_srmi(16));
        for limit in [0usize, 1, 7, 999, 5000] {
            let n = index.range_from(&0, limit).count();
            assert_eq!(n, limit.min(1000), "limit {limit}");
        }
    }

    #[test]
    fn iter_skips_gaps_created_by_deletes() {
        let data: Vec<(u64, u64)> = (0..1000).map(|k| (k, k)).collect();
        let mut index = AlexIndex::bulk_load(&data, AlexConfig::pma_armi().with_max_node_keys(256));
        for k in (0..1000).step_by(2) {
            index.remove(&k);
        }
        let odds: Vec<u64> = index.iter().map(|(k, _)| *k).collect();
        assert_eq!(odds, (1..1000).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn range_from_key_beyond_max_is_empty() {
        let data: Vec<(u64, u64)> = (0..100).map(|k| (k, k)).collect();
        let index = AlexIndex::bulk_load(&data, AlexConfig::ga_armi());
        assert_eq!(index.range_from(&1_000_000, 10).count(), 0);
    }

    #[test]
    fn values_travel_with_keys() {
        let data: Vec<(u64, u64)> = (0..500).map(|k| (k, k * 7)).collect();
        let index = AlexIndex::bulk_load(&data, AlexConfig::ga_armi().with_max_node_keys(128));
        for (k, v) in index.iter() {
            assert_eq!(*v, *k * 7);
        }
    }
}
