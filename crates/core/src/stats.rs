//! Instrumentation counters.
//!
//! The paper's drilldown experiments (Figures 7–9) are driven by
//! counters like shifts-per-insert and prediction error; these structs
//! collect them. Read-side counters (search comparisons) live in
//! relaxed atomics so `get` can stay `&self` *and* the whole read path
//! stays `Sync` — a requirement of the sharded concurrent front-end
//! (`alex-sharded`), which serves lookups from parallel reader threads.

use core::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Write-side work counters for one data node or a whole index.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WriteStats {
    /// Number of inserts performed.
    pub inserts: u64,
    /// Elements moved to create gaps for inserts (Figure 8's metric).
    pub shifts: u64,
    /// Elements rewritten by PMA window rebalances.
    pub rebalance_moves: u64,
    /// Node expansions (Algorithm 3).
    pub expansions: u64,
    /// Node contractions after deletes.
    pub contractions: u64,
    /// Linear-model retrains.
    pub retrains: u64,
    /// Leaf splits (node splitting on inserts, §3.4.2).
    pub splits: u64,
    /// Number of deletes performed.
    pub deletes: u64,
}

impl WriteStats {
    /// Merge counters from another instance.
    pub fn absorb(&mut self, other: &WriteStats) {
        self.inserts += other.inserts;
        self.shifts += other.shifts;
        self.rebalance_moves += other.rebalance_moves;
        self.expansions += other.expansions;
        self.contractions += other.contractions;
        self.retrains += other.retrains;
        self.splits += other.splits;
        self.deletes += other.deletes;
    }

    /// Average shifts per insert (Figure 8).
    pub fn shifts_per_insert(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            self.shifts as f64 / self.inserts as f64
        }
    }
}

/// Read-side counters, interior-mutable (relaxed atomics) so lookups
/// stay `&self` and the read path is `Sync`. Counters are advisory
/// instrumentation: under concurrent readers each increment lands
/// atomically but the three fields are not updated as one transaction.
///
/// The atomic RMWs sit on the lookup hot path (and, under parallel
/// Zipf-skewed readers, contend on hot leaves' counter cache lines),
/// so the default-on `read-stats` cargo feature can be disabled to
/// compile [`ReadStats::record`] down to a no-op for peak-throughput
/// runs; all counter reads then return zero.
#[derive(Debug, Default)]
pub struct ReadStats {
    lookups: AtomicU64,
    comparisons: AtomicU64,
    direct_hits: AtomicU64,
}

impl Clone for ReadStats {
    fn clone(&self) -> Self {
        Self {
            lookups: AtomicU64::new(self.lookups()),
            comparisons: AtomicU64::new(self.comparisons()),
            direct_hits: AtomicU64::new(self.direct_hits()),
        }
    }
}

impl ReadStats {
    /// Record one lookup that took `comparisons` key comparisons.
    /// `direct` marks a *direct hit* — the key was found at exactly the
    /// model-predicted slot (§4).
    #[inline]
    pub fn record(&self, comparisons: u32, direct: bool) {
        #[cfg(feature = "read-stats")]
        {
            self.lookups.fetch_add(1, Relaxed);
            self.comparisons.fetch_add(u64::from(comparisons), Relaxed);
            if direct {
                self.direct_hits.fetch_add(1, Relaxed);
            }
        }
        #[cfg(not(feature = "read-stats"))]
        let _ = (comparisons, direct);
    }

    /// Total lookups recorded.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Relaxed)
    }

    /// Total key comparisons across lookups.
    pub fn comparisons(&self) -> u64 {
        self.comparisons.load(Relaxed)
    }

    /// Lookups that hit the predicted slot directly.
    pub fn direct_hits(&self) -> u64 {
        self.direct_hits.load(Relaxed)
    }

    /// Mean comparisons per lookup.
    pub fn comparisons_per_lookup(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.comparisons() as f64 / self.lookups() as f64
        }
    }
}

/// Memory-footprint report (§5.1 accounting).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SizeReport {
    /// Models + child pointers + node metadata.
    pub index_bytes: usize,
    /// Key/payload arrays including gaps, plus bitmaps.
    pub data_bytes: usize,
    /// Number of data (leaf) nodes.
    pub num_data_nodes: usize,
    /// Number of inner (model) nodes.
    pub num_inner_nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_stats_absorb_and_ratio() {
        let mut a = WriteStats {
            inserts: 10,
            shifts: 30,
            ..Default::default()
        };
        let b = WriteStats {
            inserts: 10,
            shifts: 10,
            expansions: 2,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.inserts, 20);
        assert_eq!(a.shifts, 40);
        assert_eq!(a.expansions, 2);
        assert!((a.shifts_per_insert() - 2.0).abs() < 1e-12);
        assert_eq!(WriteStats::default().shifts_per_insert(), 0.0);
    }

    #[test]
    #[cfg(feature = "read-stats")]
    fn read_stats_record() {
        let r = ReadStats::default();
        r.record(1, true);
        r.record(5, false);
        assert_eq!(r.lookups(), 2);
        assert_eq!(r.comparisons(), 6);
        assert_eq!(r.direct_hits(), 1);
        assert!((r.comparisons_per_lookup() - 3.0).abs() < 1e-12);
    }
}
