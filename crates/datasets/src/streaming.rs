//! Chunked/streaming key generation: an iterator of **globally sorted
//! blocks**, so shard bulk-loads (`alex_sharded::ShardedAlex::
//! bulk_load_blocks`) and future >100M-key runs never materialize one
//! giant `Vec`.
//!
//! The batch generators in [`crate::generators`] draw i.i.d. samples
//! and sort afterwards — inherently all-in-memory. Streaming *sorted*
//! output instead combines two classic tricks:
//!
//! 1. **Sequential uniform order statistics**: the `i`-th smallest of
//!    `n` uniforms can be generated *in ascending order* one at a time
//!    via `u_{i+1} = 1 - (1 - u_i)·(1 - U)^{1/(n-i)}` — O(1) memory,
//!    no sorting.
//! 2. **Empirical inverse CDF**: a sorted pilot sample of the target
//!    distribution (the same quantile table as [`crate::cdf_points`])
//!    maps each uniform rank to a key by linear interpolation.
//!
//! The stream therefore follows the pilot's distribution (exactly at
//! the pilot's quantile knots, interpolated between them) and is
//! strictly increasing end to end. Keys are deduplicated by nudging to
//! the next representable value, which only matters in regions denser
//! than the key type's resolution.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::generators::{lognormal_keys, longitudes_keys, longlat_keys, ycsb_keys};
use crate::sorted;

/// Pilot-sample size used by the dataset constructors.
const PILOT_KEYS: usize = 65_536;

/// Key types a [`SortedBlocks`] stream can produce.
pub trait StreamKey: Copy + PartialOrd {
    /// Map an interpolated quantile back to a key.
    fn from_f64(x: f64) -> Self;

    /// The key as an `f64` quantile-table entry.
    fn to_f64(self) -> f64;

    /// The smallest key strictly greater than `self` (uniqueness
    /// nudge).
    fn successor(self) -> Self;
}

impl StreamKey for f64 {
    fn from_f64(x: f64) -> Self {
        x
    }

    fn to_f64(self) -> f64 {
        self
    }

    fn successor(self) -> Self {
        self.next_up()
    }
}

impl StreamKey for u64 {
    fn from_f64(x: f64) -> Self {
        if x <= 0.0 {
            0
        } else {
            x.round() as u64
        }
    }

    fn to_f64(self) -> f64 {
        self as f64
    }

    fn successor(self) -> Self {
        self.saturating_add(1)
    }
}

/// An iterator of globally sorted key blocks: each yielded `Vec` is
/// sorted, and every key is strictly greater than everything yielded
/// before it. Total output is exactly `n` keys in `ceil(n/block_size)`
/// blocks; memory use is one block plus the pilot table.
///
/// # Examples
/// ```
/// use alex_datasets::SortedBlocks;
///
/// let blocks = SortedBlocks::lognormal(10_000, 1024, 42);
/// let keys: Vec<u64> = blocks.flatten().collect();
/// assert_eq!(keys.len(), 10_000);
/// assert!(keys.windows(2).all(|w| w[0] < w[1]), "globally sorted, unique");
/// ```
#[derive(Debug)]
pub struct SortedBlocks<K> {
    /// Sorted pilot sample (the empirical quantile table), in key
    /// space.
    pilot: Vec<K>,
    /// Total keys still to produce.
    remaining: usize,
    block_size: usize,
    rng: StdRng,
    /// Keys not yet drawn from the uniform order-statistics walk
    /// (`n - i` in the recurrence).
    ranks_left: usize,
    /// Last uniform order statistic, in `[0, 1)`.
    u: f64,
    /// Last emitted key (uniqueness nudge).
    last: Option<K>,
}

impl<K: StreamKey> SortedBlocks<K> {
    /// Stream `n` keys following the empirical distribution of `pilot`
    /// (any sorted, non-empty sample), in blocks of `block_size`.
    ///
    /// # Panics
    /// Panics if `pilot` is empty or `block_size == 0`.
    pub fn from_pilot(pilot: Vec<K>, n: usize, block_size: usize, seed: u64) -> Self {
        assert!(!pilot.is_empty(), "need a non-empty pilot sample");
        assert!(block_size > 0, "need a positive block size");
        Self {
            pilot,
            remaining: n,
            block_size,
            rng: StdRng::seed_from_u64(seed ^ 0x5B10C6),
            ranks_left: n,
            u: 0.0,
            last: None,
        }
    }

    /// Advance the ascending uniform order statistic.
    fn next_rank(&mut self) -> f64 {
        let step: f64 = self.rng.random();
        // u' = 1 - (1-u)·(1-U)^{1/k}: the next of `k` remaining order
        // statistics above `u`.
        let k = self.ranks_left.max(1) as f64;
        self.u = 1.0 - (1.0 - self.u) * (1.0 - step).powf(1.0 / k);
        self.ranks_left = self.ranks_left.saturating_sub(1);
        self.u.clamp(0.0, 1.0)
    }

    /// Estimate `shards - 1` strictly increasing shard-boundary keys
    /// from the pilot quantile table, without consuming the stream.
    ///
    /// Boundary `i` sits at pilot quantile `(i + 1) / shards`, so the
    /// stream's keys divide roughly evenly across the shards cut by
    /// these boundaries — the streaming analogue of
    /// `alex_sharded`'s CDF-sampled boundary planner, available
    /// *before* any block is generated (which is the point: a
    /// memory-budgeted loader must fix its shard cuts up front, then
    /// feed blocks through without ever holding the full key set).
    /// Colliding quantiles (duplicate-heavy pilots) are nudged to the
    /// next representable key, mirroring the stream's own uniqueness
    /// nudge.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn boundary_estimates(&self, shards: usize) -> Vec<K> {
        assert!(shards > 0, "need at least one shard");
        let mut out = Vec::with_capacity(shards.saturating_sub(1));
        let mut last: Option<K> = None;
        for i in 1..shards {
            let mut key = self.quantile(i as f64 / shards as f64);
            if let Some(prev) = last {
                if key <= prev {
                    key = prev.successor();
                }
            }
            last = Some(key);
            out.push(key);
        }
        out
    }

    /// Map a uniform rank through the pilot quantile table.
    fn quantile(&self, u: f64) -> K {
        let m = self.pilot.len();
        if m == 1 {
            return self.pilot[0];
        }
        let pos = u * (m - 1) as f64;
        let lo = (pos.floor() as usize).min(m - 2);
        let frac = pos - lo as f64;
        let a = self.pilot[lo].to_f64();
        let b = self.pilot[lo + 1].to_f64();
        K::from_f64(a + (b - a) * frac)
    }
}

impl<K: StreamKey> Iterator for SortedBlocks<K> {
    type Item = Vec<K>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        let take = self.remaining.min(self.block_size);
        let mut block = Vec::with_capacity(take);
        for _ in 0..take {
            let u = self.next_rank();
            let mut key = self.quantile(u);
            if let Some(last) = self.last {
                if key <= last {
                    key = last.successor();
                }
            }
            self.last = Some(key);
            block.push(key);
        }
        self.remaining -= take;
        Some(block)
    }
}

impl SortedBlocks<f64> {
    /// Streaming `longitudes` (smooth non-uniform CDF, `f64` keys).
    pub fn longitudes(n: usize, block_size: usize, seed: u64) -> Self {
        let pilot = sorted(longitudes_keys(PILOT_KEYS.min(n.max(2)), seed));
        Self::from_pilot(pilot, n, block_size, seed)
    }

    /// Streaming `longlat` (step-function CDF, `f64` keys).
    pub fn longlat(n: usize, block_size: usize, seed: u64) -> Self {
        let pilot = sorted(longlat_keys(PILOT_KEYS.min(n.max(2)), seed));
        Self::from_pilot(pilot, n, block_size, seed)
    }
}

impl SortedBlocks<u64> {
    /// Streaming `lognormal` (extreme skew, `u64` keys).
    pub fn lognormal(n: usize, block_size: usize, seed: u64) -> Self {
        let pilot = sorted(lognormal_keys(PILOT_KEYS.min(n.max(2)), seed));
        Self::from_pilot(pilot, n, block_size, seed)
    }

    /// Streaming `YCSB` (uniform 64-bit ids, `u64` keys).
    pub fn ycsb(n: usize, block_size: usize, seed: u64) -> Self {
        let pilot = sorted(ycsb_keys(PILOT_KEYS.min(n.max(2)), seed));
        Self::from_pilot(pilot, n, block_size, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(blocks: SortedBlocks<u64>) -> (usize, Vec<u64>) {
        let mut sizes = Vec::new();
        let mut keys = Vec::new();
        let mut n_blocks = 0;
        for b in blocks {
            sizes.push(b.len());
            keys.extend(b);
            n_blocks += 1;
        }
        // Every block but the last is full-size.
        for s in &sizes[..sizes.len().saturating_sub(1)] {
            assert_eq!(*s, sizes[0]);
        }
        (n_blocks, keys)
    }

    #[test]
    fn blocks_concatenate_to_sorted_unique_stream() {
        let (n_blocks, keys) = collect(SortedBlocks::lognormal(20_000, 1000, 7));
        assert_eq!(n_blocks, 20);
        assert_eq!(keys.len(), 20_000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }

    #[test]
    fn ragged_tail_block() {
        let (n_blocks, keys) = collect(SortedBlocks::ycsb(2500, 1000, 9));
        assert_eq!(n_blocks, 3);
        assert_eq!(keys.len(), 2500);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = SortedBlocks::lognormal(5000, 512, 3).flatten().collect();
        let b: Vec<u64> = SortedBlocks::lognormal(5000, 512, 3).flatten().collect();
        let c: Vec<u64> = SortedBlocks::lognormal(5000, 512, 4).flatten().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_follows_pilot_distribution() {
        // The streamed median/quartiles must track the batch
        // generator's (both heavily skewed lognormal).
        let stream: Vec<u64> = SortedBlocks::lognormal(40_000, 4096, 11).flatten().collect();
        let batch = sorted(lognormal_keys(40_000, 11));
        for q in [0.25, 0.5, 0.75, 0.95] {
            let i = (q * 40_000.0) as usize;
            let (s, b) = (stream[i].max(1) as f64, batch[i].max(1) as f64);
            let ratio = s / b;
            assert!(
                (0.5..2.0).contains(&ratio),
                "quantile {q}: stream {s} vs batch {b}"
            );
        }
    }

    #[test]
    fn float_stream_stays_in_domain() {
        let keys: Vec<f64> = SortedBlocks::longitudes(10_000, 1024, 5).flatten().collect();
        assert_eq!(keys.len(), 10_000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(keys.iter().all(|k| (-180.0..=180.0).contains(k)));
    }

    #[test]
    fn boundary_estimates_split_the_stream_roughly_evenly() {
        let blocks = SortedBlocks::lognormal(40_000, 4096, 13);
        let bounds = blocks.boundary_estimates(8);
        assert_eq!(bounds.len(), 7);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        // Count keys routed to each shard: lognormal is extremely
        // skewed, so even a loose balance check proves the cuts track
        // the distribution rather than the key domain.
        let mut per_shard = vec![0usize; 8];
        for key in blocks.flatten() {
            let shard = bounds.partition_point(|b| *b <= key);
            per_shard[shard] += 1;
        }
        let expect = 40_000 / 8;
        for (i, n) in per_shard.iter().enumerate() {
            assert!(
                (expect / 4..expect * 4).contains(n),
                "shard {i} got {n} of 40k keys: {per_shard:?}"
            );
        }
        // Degenerate pilots still produce strictly increasing cuts.
        let flat = SortedBlocks::from_pilot(vec![7u64; 100], 10, 4, 1);
        let bounds = flat.boundary_estimates(4);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
    }

    #[test]
    fn tiny_streams() {
        let keys: Vec<u64> = SortedBlocks::ycsb(1, 10, 1).flatten().collect();
        assert_eq!(keys.len(), 1);
        let none: Vec<Vec<u64>> = SortedBlocks::ycsb(0, 10, 1).collect();
        assert!(none.is_empty());
    }
}
