//! Key generators for the four evaluation datasets plus two synthetic
//! helpers used by the microbenchmarks.

use alex_api::FixedStr;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// The four datasets of Table 1, used to parameterize benchmark binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// OSM-style longitudes (`f64`, smooth non-uniform CDF).
    Longitudes,
    /// Compound `180·round(lon) + lat` keys (`f64`, step-function CDF).
    Longlat,
    /// `⌊exp(N(0,2))·10⁹⌋` (`u64`, extreme skew).
    Lognormal,
    /// Uniform 64-bit user IDs (`u64`, uniform CDF).
    Ycsb,
}

impl Dataset {
    /// All four datasets in the paper's presentation order.
    pub const ALL: [Dataset; 4] = [Dataset::Longitudes, Dataset::Longlat, Dataset::Lognormal, Dataset::Ycsb];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Longitudes => "longitudes",
            Dataset::Longlat => "longlat",
            Dataset::Lognormal => "lognormal",
            Dataset::Ycsb => "YCSB",
        }
    }

    /// Key type name, as in Table 1.
    pub fn key_type(self) -> &'static str {
        match self {
            Dataset::Longitudes | Dataset::Longlat => "double",
            Dataset::Lognormal | Dataset::Ycsb => "64-bit int",
        }
    }

    /// Payload size in bytes, as in Table 1.
    pub fn payload_size(self) -> usize {
        match self {
            Dataset::Ycsb => 80,
            _ => 8,
        }
    }
}

/// Population-centre mixture used to synthesize OSM-like longitudes.
/// Weights are relative; means/stddevs are in degrees. Chosen so the
/// global CDF is smooth but clearly non-uniform (dense Europe/Asia,
/// sparse oceans), like Figure 13's `longitudes` panel.
const LON_CLUSTERS: &[(f64, f64, f64)] = &[
    // (weight, mean, stddev)
    (0.22, 10.0, 12.0),   // Europe
    (0.08, 30.0, 8.0),    // Eastern Europe / Middle East
    (0.16, 78.0, 10.0),   // South Asia
    (0.18, 115.0, 12.0),  // East Asia
    (0.05, 140.0, 5.0),   // Japan
    (0.13, -75.0, 10.0),  // US East / South America
    (0.08, -100.0, 12.0), // US Central / Mexico
    (0.06, -122.0, 6.0),  // US West
    (0.04, 0.0, 90.0),    // diffuse background
];

/// Latitude mixture (for `longlat`): population concentrates in the
/// northern mid-latitudes.
const LAT_CLUSTERS: &[(f64, f64, f64)] = &[
    (0.45, 40.0, 12.0),
    (0.25, 25.0, 10.0),
    (0.15, 0.0, 15.0),
    (0.10, -25.0, 10.0),
    (0.05, 0.0, 40.0),
];

/// One standard normal via Box–Muller (rand's `StandardNormal` lives in
/// `rand_distr`, which is outside the approved dependency set).
#[inline]
fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Sample from a weighted Gaussian mixture, clamped to `[lo, hi]`.
fn mixture_sample(rng: &mut StdRng, clusters: &[(f64, f64, f64)], lo: f64, hi: f64) -> f64 {
    let total: f64 = clusters.iter().map(|c| c.0).sum();
    let mut pick = rng.random_range(0.0..total);
    for &(w, mean, std) in clusters {
        if pick < w {
            let v = mean + std * std_normal(rng);
            return v.clamp(lo, hi);
        }
        pick -= w;
    }
    // Floating-point edge: fall back to the last cluster.
    let &(_, mean, std) = clusters.last().expect("mixture must be non-empty");
    (mean + std * std_normal(rng)).clamp(lo, hi)
}

/// Generate exactly `n` unique keys by oversampling `gen` and
/// deduplicating, then shuffle them.
fn unique_shuffled<K, F>(n: usize, seed: u64, mut generate: F) -> Vec<K>
where
    K: PartialOrd + Copy,
    F: FnMut(&mut StdRng) -> K,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<K> = Vec::with_capacity(n + n / 8);
    loop {
        while keys.len() < n + n / 8 + 16 {
            keys.push(generate(&mut rng));
        }
        keys.sort_by(|a, b| a.partial_cmp(b).expect("no NaN keys"));
        keys.dedup_by(|a, b| a == b);
        if keys.len() >= n {
            break;
        }
    }
    // Shuffle *before* truncating: truncating the sorted vector would
    // systematically drop the largest keys and bias the distribution.
    keys.shuffle(&mut rng);
    keys.truncate(n);
    keys
}

/// OSM-style longitudes in `[-180, 180]` (the paper's `longitudes`
/// dataset, scaled down). Unique, shuffled, deterministic per seed.
pub fn longitudes_keys(n: usize, seed: u64) -> Vec<f64> {
    unique_shuffled(n, seed, |rng| mixture_sample(rng, LON_CLUSTERS, -180.0, 180.0))
}

/// Compound `longlat` keys built with the paper's own transformation
/// (App. C): round the longitude to the nearest degree, multiply by 180
/// (the latitude domain size), add the latitude. Produces the highly
/// non-linear, step-function local CDF of Figure 14.
pub fn longlat_keys(n: usize, seed: u64) -> Vec<f64> {
    unique_shuffled(n, seed, |rng| {
        let lon = mixture_sample(rng, LON_CLUSTERS, -180.0, 180.0).round();
        let lat = mixture_sample(rng, LAT_CLUSTERS, -90.0, 90.0);
        180.0 * lon + lat
    })
}

/// The paper's `lognormal` dataset: `⌊exp(N(0, σ=2)) · 10⁹⌋` as 64-bit
/// integers (App. C). Extremely skewed.
pub fn lognormal_keys(n: usize, seed: u64) -> Vec<u64> {
    unique_shuffled(n, seed, |rng| {
        let z = std_normal(rng);
        ((2.0 * z).exp() * 1e9).floor() as u64
    })
}

/// The paper's `YCSB` dataset: uniform 64-bit user IDs.
pub fn ycsb_keys(n: usize, seed: u64) -> Vec<u64> {
    unique_shuffled(n, seed, |rng| rng.random::<u64>())
}

/// Strictly increasing keys `0, step, 2·step, …` — the adversarial
/// sequential-insert pattern of Figure 5c.
pub fn sequential_keys(n: usize, step: u64) -> Vec<u64> {
    (0..n as u64).map(|i| i * step).collect()
}

/// `n` perfectly uniformly spaced integers, as used by the search-method
/// microbenchmark of Figure 11 ("100 million perfectly uniformly
/// distributed integers", scaled).
pub fn uniform_dense_keys(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| i * 16 + 7).collect()
}

/// Short host prefixes for [`url_keys`]. Deliberately 6–9 bytes so
/// that with `N = 16` the host eats most of the 8-byte model prefix
/// (`FixedStr::prefix_u64`) and keys sharing a host collapse onto
/// near-identical model inputs — the adversarial structure real URL
/// sets have, and what the leaf-level degradation guard is for.
const URL_HOSTS: &[&str] = &[
    "ace.io/", "api.dev/", "bee.org/", "cdn.net/", "data.gov/", "docs.app/", "geo.org/",
    "hub.dev/", "img.net/", "map.net/", "news.co/", "osm.org/", "pay.com/", "shop.io/",
    "tile.io/", "wiki.org/",
];

/// Syllables for word-like path segments.
const SYLLABLES: &[&str] = &[
    "ka", "ri", "mo", "ta", "se", "lu", "no", "vi", "ze", "po", "da", "mi",
];

/// URL/word-like string keys: a host prefix drawn from a small pool,
/// then a pronounceable path plus two digits. Keys are unique *after*
/// `FixedStr`'s width-`N` normalization (padding/truncation), arrive
/// shuffled, and are deterministic per seed — mirroring the integer
/// generators' contract. The heavy shared-host prefixes make the
/// first-8-byte model projection collide on purpose; use `N >= 16` so
/// enough tail bytes survive to keep keys distinct.
pub fn url_keys<const N: usize>(n: usize, seed: u64) -> Vec<FixedStr<N>> {
    assert!(N >= 16, "url_keys needs N >= 16 to keep truncated keys distinct");
    unique_shuffled(n, seed, |rng| {
        let mut s = String::with_capacity(N);
        s.push_str(URL_HOSTS[rng.random_range(0..URL_HOSTS.len())]);
        for _ in 0..3 {
            s.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
        }
        s.push((b'0' + rng.random_range(0..10usize) as u8) as char);
        s.push((b'0' + rng.random_range(0..10usize) as u8) as char);
        FixedStr::from(s.as_str())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_unique_f64(keys: &[f64]) {
        let mut s = keys.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in s.windows(2) {
            assert!(w[0] < w[1], "duplicate key {}", w[0]);
        }
    }

    #[test]
    fn longitudes_shape() {
        let keys = longitudes_keys(10_000, 42);
        assert_eq!(keys.len(), 10_000);
        assert_unique_f64(&keys);
        assert!(keys.iter().all(|k| (-180.0..=180.0).contains(k)));
        // Non-uniform: more keys in [0, 30] (Europe) than in [-30, 0]
        // (Atlantic).
        let europe = keys.iter().filter(|k| (0.0..30.0).contains(*k)).count();
        let atlantic = keys.iter().filter(|k| (-30.0..0.0).contains(*k)).count();
        assert!(europe > atlantic * 2, "europe={europe} atlantic={atlantic}");
    }

    #[test]
    fn longitudes_deterministic() {
        assert_eq!(longitudes_keys(1000, 7), longitudes_keys(1000, 7));
        assert_ne!(longitudes_keys(1000, 7), longitudes_keys(1000, 8));
    }

    #[test]
    fn longlat_step_structure() {
        let keys = longlat_keys(20_000, 42);
        assert_eq!(keys.len(), 20_000);
        assert_unique_f64(&keys);
        // Keys cluster into strips of width <= 180 (one per rounded
        // longitude): the fractional strip index must repeat heavily.
        let mut strips: Vec<i64> = keys.iter().map(|k| (k / 180.0).round() as i64).collect();
        strips.sort_unstable();
        strips.dedup();
        assert!(
            strips.len() < 362,
            "at most one strip per integer degree, got {}",
            strips.len()
        );
        assert!(strips.len() > 50, "should cover many strips, got {}", strips.len());
    }

    #[test]
    fn lognormal_skew() {
        let keys = lognormal_keys(20_000, 42);
        assert_eq!(keys.len(), 20_000);
        let mut s = keys.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), keys.len(), "keys must be unique");
        // Median far below the mean => heavy right skew.
        let median = s[s.len() / 2] as f64;
        let mean = s.iter().map(|&k| k as f64).sum::<f64>() / s.len() as f64;
        assert!(mean > 3.0 * median, "mean={mean:.3e} median={median:.3e}");
    }

    #[test]
    fn ycsb_uniformity() {
        let keys = ycsb_keys(20_000, 42);
        assert_eq!(keys.len(), 20_000);
        // Quartile counts within 15% of each other.
        let q = u64::MAX / 4;
        let counts = [
            keys.iter().filter(|&&k| k < q).count(),
            keys.iter().filter(|&&k| (q..2 * q).contains(&k)).count(),
            keys.iter().filter(|&&k| (2 * q..3 * q).contains(&k)).count(),
            keys.iter().filter(|&&k| k >= 3 * q).count(),
        ];
        for c in counts {
            assert!((4000..6000).contains(&c), "quartile counts {counts:?}");
        }
    }

    #[test]
    fn sequential_and_uniform_helpers() {
        assert_eq!(sequential_keys(4, 10), vec![0, 10, 20, 30]);
        let u = uniform_dense_keys(100);
        assert_eq!(u.len(), 100);
        for w in u.windows(2) {
            assert_eq!(w[1] - w[0], 16);
        }
    }

    #[test]
    fn url_keys_unique_prefix_heavy_and_deterministic() {
        let keys = url_keys::<16>(20_000, 42);
        assert_eq!(keys.len(), 20_000);
        let mut s = keys.clone();
        s.sort_unstable();
        for w in s.windows(2) {
            assert!(w[0] < w[1], "duplicate key {:?}", w[0]);
        }
        // No key is the reserved sentinel, and all are printable hosts.
        for k in keys.iter().step_by(97) {
            assert_ne!(*k, FixedStr::<16>::MAX);
            assert!(k.to_text().contains('/'), "url-like shape: {:?}", k);
        }
        // Shared-prefix heavy: far fewer distinct 8-byte model
        // prefixes than keys — the projection collides by design.
        let mut prefixes: Vec<u64> = keys.iter().map(|k| k.prefix_u64()).collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        assert!(
            prefixes.len() * 4 < keys.len(),
            "prefixes {} vs keys {}",
            prefixes.len(),
            keys.len()
        );
        assert_eq!(url_keys::<16>(1000, 7), url_keys::<16>(1000, 7));
        assert_ne!(url_keys::<16>(1000, 7), url_keys::<16>(1000, 8));
        // Shuffled, like every other generator.
        let sorted = keys.windows(2).all(|w| w[0] <= w[1]);
        assert!(!sorted, "url keys should arrive in random order");
    }

    #[test]
    fn dataset_metadata() {
        assert_eq!(Dataset::Longitudes.name(), "longitudes");
        assert_eq!(Dataset::Ycsb.payload_size(), 80);
        assert_eq!(Dataset::Lognormal.payload_size(), 8);
        assert_eq!(Dataset::Longlat.key_type(), "double");
        assert_eq!(Dataset::ALL.len(), 4);
    }

    #[test]
    fn generators_are_shuffled() {
        // A shuffled output should not be sorted.
        let keys = longitudes_keys(1000, 3);
        let is_sorted = keys.windows(2).all(|w| w[0] <= w[1]);
        assert!(!is_sorted, "generator output should arrive in random order");
    }
}
