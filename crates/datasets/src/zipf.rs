//! Zipfian key-rank selection, after the YCSB generator (Gray et al.,
//! "Quickly generating billion-record synthetic databases"). §5.1.2 of
//! the paper: "keys to look up are selected randomly from the set of
//! existing keys in the index according to a Zipfian distribution".

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const DEFAULT_THETA: f64 = 0.99;

/// Zipfian generator over ranks `0..n` with YCSB's constant `θ = 0.99`.
///
/// Rank 0 is the most popular. Supports growing `n` incrementally (the
/// read-write workloads insert as they go) without recomputing the
/// harmonic sum from scratch.
#[derive(Debug)]
pub struct Zipf {
    n: usize,
    theta: f64,
    zeta_n: f64,
    zeta2: f64,
    alpha: f64,
    eta: f64,
    rng: StdRng,
}

impl Zipf {
    /// Generator over ranks `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "Zipf requires a non-empty rank space");
        let theta = DEFAULT_THETA;
        let zeta_n = zeta(0, n, theta, 0.0);
        let zeta2 = zeta(0, 2.min(n), theta, 0.0);
        let mut z = Self {
            n,
            theta,
            zeta_n,
            zeta2,
            alpha: 1.0 / (1.0 - theta),
            eta: 0.0,
            rng: StdRng::seed_from_u64(seed),
        };
        z.recompute_eta();
        z
    }

    fn recompute_eta(&mut self) {
        self.eta =
            (1.0 - (2.0 / self.n as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta2 / self.zeta_n);
    }

    /// Current rank-space size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Grow the rank space to `n`, extending the harmonic sum
    /// incrementally.
    pub fn extend_to(&mut self, n: usize) {
        if n <= self.n {
            return;
        }
        self.zeta_n = zeta(self.n, n, self.theta, self.zeta_n);
        self.n = n;
        self.recompute_eta();
    }

    /// Next Zipf-distributed rank in `0..n` (0 = most popular).
    pub fn next_rank(&mut self) -> usize {
        let u: f64 = self.rng.random();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        rank.min(self.n - 1)
    }
}

/// `zeta(n) = Σ_{i=1}^{n} 1/i^θ`, computed incrementally from a prefix.
fn zeta(from: usize, to: usize, theta: f64, partial: f64) -> f64 {
    let mut sum = partial;
    for i in from..to {
        sum += 1.0 / ((i + 1) as f64).powf(theta);
    }
    sum
}

/// Scrambled Zipfian: Zipf popularity spread pseudo-randomly across the
/// rank space via FNV hashing, as YCSB does, so that the hot keys are
/// not physically adjacent in the index.
#[derive(Debug)]
pub struct ScrambledZipf {
    inner: Zipf,
}

impl ScrambledZipf {
    /// Generator over ranks `0..n`.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            inner: Zipf::new(n, seed),
        }
    }

    /// Grow the rank space to `n`.
    pub fn extend_to(&mut self, n: usize) {
        self.inner.extend_to(n);
    }

    /// Current rank-space size.
    #[inline]
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// Next scrambled rank in `0..n`.
    pub fn next_rank(&mut self) -> usize {
        let r = self.inner.next_rank() as u64;
        (fnv1a(r) % self.inner.n() as u64) as usize
    }
}

#[inline]
fn fnv1a(x: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for i in 0..8 {
        h ^= (x >> (8 * i)) & 0xff;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_in_bounds() {
        let mut z = Zipf::new(1000, 1);
        for _ in 0..10_000 {
            assert!(z.next_rank() < 1000);
        }
        let mut s = ScrambledZipf::new(1000, 1);
        for _ in 0..10_000 {
            assert!(s.next_rank() < 1000);
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut z = Zipf::new(10_000, 42);
        let mut top10 = 0usize;
        let trials = 50_000;
        for _ in 0..trials {
            if z.next_rank() < 10 {
                top10 += 1;
            }
        }
        // With theta=0.99 and n=10k, the top-10 ranks draw a large share
        // of accesses (far beyond the uniform 0.1%).
        assert!(top10 > trials / 10, "top-10 share too small: {top10}/{trials}");
    }

    #[test]
    fn rank_zero_most_popular() {
        let mut z = Zipf::new(1000, 7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.next_rank()] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max, "rank 0 must be the mode");
        assert!(counts[0] > counts[100] * 2);
    }

    #[test]
    fn extend_to_grows() {
        let mut z = Zipf::new(100, 3);
        z.extend_to(1000);
        assert_eq!(z.n(), 1000);
        let mut seen_beyond = false;
        for _ in 0..50_000 {
            if z.next_rank() >= 100 {
                seen_beyond = true;
                break;
            }
        }
        assert!(seen_beyond, "extended rank space never sampled");
        // Extending to a smaller n is a no-op.
        z.extend_to(10);
        assert_eq!(z.n(), 1000);
    }

    #[test]
    fn scrambled_spreads_popularity() {
        let mut s = ScrambledZipf::new(10_000, 11);
        let mut counts = vec![0usize; 10_000];
        for _ in 0..100_000 {
            counts[s.next_rank()] += 1;
        }
        // The mode should NOT be rank 0 with overwhelming likelihood —
        // scrambling moves it to a hashed position.
        let (mode, _) = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
        // fnv1a(0) % 10000 is deterministic; just assert the hot key moved.
        assert_eq!(mode as u64, fnv1a(0) % 10_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Zipf::new(500, 9);
        let mut b = Zipf::new(500, 9);
        for _ in 0..100 {
            assert_eq!(a.next_rank(), b.next_rank());
        }
    }
}
