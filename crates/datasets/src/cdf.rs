//! Empirical CDF sampling, used to regenerate Figures 13 and 14
//! (Appendix C: dataset CDFs at global and zoomed scales).

/// Sample `points` evenly spaced points of the empirical CDF of
/// `sorted_keys`. Returns `(key, cdf)` pairs with `cdf` in `[0, 1]`.
///
/// # Panics
/// Panics if `sorted_keys` is empty or `points == 0`.
pub fn cdf_points<K: Copy>(sorted_keys: &[K], points: usize) -> Vec<(K, f64)> {
    assert!(!sorted_keys.is_empty(), "need at least one key");
    assert!(points > 0, "need at least one point");
    let n = sorted_keys.len();
    (0..points)
        .map(|i| {
            let rank = (i * (n - 1)) / points.max(1).saturating_sub(1).max(1);
            let rank = rank.min(n - 1);
            (sorted_keys[rank], rank as f64 / n as f64)
        })
        .collect()
}

/// Sample the CDF restricted to the rank window `[lo_frac, hi_frac)`,
/// reproducing the "zoom in on 10% / 0.2% of the CDF" panels of
/// Figure 14.
///
/// # Panics
/// Panics if the fractions are not `0 <= lo < hi <= 1` or the window is
/// empty.
pub fn zoomed_cdf_points<K: Copy>(
    sorted_keys: &[K],
    lo_frac: f64,
    hi_frac: f64,
    points: usize,
) -> Vec<(K, f64)> {
    assert!((0.0..1.0).contains(&lo_frac) && lo_frac < hi_frac && hi_frac <= 1.0);
    let n = sorted_keys.len();
    let lo = (lo_frac * n as f64) as usize;
    let hi = ((hi_frac * n as f64) as usize).min(n);
    assert!(lo < hi, "zoom window is empty");
    let window = &sorted_keys[lo..hi];
    cdf_points(window, points.min(window.len()))
        .into_iter()
        .map(|(k, frac)| (k, (lo as f64 + frac * window.len() as f64) / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_monotone_and_bounded() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 7).collect();
        let pts = cdf_points(&keys, 50);
        assert_eq!(pts.len(), 50);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!(pts[0].1 >= 0.0 && pts.last().unwrap().1 <= 1.0);
    }

    #[test]
    fn cdf_uniform_data_is_linear() {
        let keys: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let pts = cdf_points(&keys, 100);
        for (k, c) in pts {
            assert!((k / 10_000.0 - c).abs() < 0.02, "key {k} cdf {c}");
        }
    }

    #[test]
    fn zoom_window_covers_expected_ranks() {
        let keys: Vec<u64> = (0..1000).collect();
        let pts = zoomed_cdf_points(&keys, 0.5, 0.6, 10);
        for (k, c) in pts {
            assert!((500..600).contains(&k), "key {k} outside zoom window");
            assert!((0.5..0.6001).contains(&c), "cdf {c} outside zoom window");
        }
    }

    #[test]
    fn single_point() {
        let keys = vec![42u64];
        let pts = cdf_points(&keys, 1);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].0, 42);
    }
}
