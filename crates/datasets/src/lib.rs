//! Dataset and key-selection generators mirroring §5.1.1 and Appendix C
//! of the ALEX paper.
//!
//! The paper evaluates on four datasets: `longitudes` (OSM longitudes),
//! `longlat` (compound keys `k = 180·lon + lat`), `lognormal`
//! (`⌊exp(N(0, 2)) · 10⁹⌋`), and `YCSB` (uniform 64-bit user IDs with
//! 80-byte payloads). We do not have the OSM extracts, so `longitudes`
//! and `longlat` are synthesized from a mixture model of clustered
//! population centres that reproduces the documented CDF shapes: a
//! smooth but non-uniform global CDF for `longitudes`, and the
//! step-function local CDF that Appendix C shows for `longlat` (the
//! steps come from the paper's own construction — longitudes are rounded
//! to whole degrees before being scaled and combined with latitudes —
//! which we apply verbatim). `lognormal` and `YCSB` follow the paper's
//! exact recipes.
//!
//! All generators are deterministic given a seed, return *unique* keys
//! (the paper: "These datasets do not contain duplicate values"), and
//! return them in shuffled order (the paper: "datasets are randomly
//! shuffled to simulate a uniform dataset distribution over time").

mod cdf;
mod generators;
mod payload;
mod streaming;
mod zipf;

pub use cdf::{cdf_points, zoomed_cdf_points};
pub use generators::{
    lognormal_keys, longitudes_keys, longlat_keys, sequential_keys, uniform_dense_keys, url_keys,
    ycsb_keys, Dataset,
};
pub use payload::{Payload, Payload8, Payload80};
pub use streaming::{SortedBlocks, StreamKey};
pub use zipf::{ScrambledZipf, Zipf};

/// Sort a key vector ascending (total order via `partial_cmp`; the
/// generators never produce NaN).
pub fn sorted<K: PartialOrd + Copy>(mut keys: Vec<K>) -> Vec<K> {
    keys.sort_by(|a, b| a.partial_cmp(b).expect("keys must be totally ordered"));
    keys
}
