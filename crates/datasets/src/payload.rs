//! Fixed-size payloads. The paper attaches randomly generated
//! fixed-size payloads to every key: 8 bytes for three datasets, 80
//! bytes for YCSB (Table 1).

/// A fixed-size, `Copy` payload of `N` bytes.
///
/// # Examples
/// ```
/// use alex_datasets::Payload;
///
/// let p = Payload::<8>::from_seed(17);
/// assert_eq!(p, Payload::<8>::from_seed(17));
/// assert_ne!(p, Payload::<8>::from_seed(18));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Payload<const N: usize>(pub [u8; N]);

impl<const N: usize> Default for Payload<N> {
    fn default() -> Self {
        Self([0; N])
    }
}

impl<const N: usize> Payload<N> {
    /// Deterministic pseudo-random payload derived from `seed`
    /// (splitmix64 stream).
    pub fn from_seed(seed: u64) -> Self {
        let mut bytes = [0u8; N];
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        for chunk in bytes.chunks_mut(8) {
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            for (b, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = src;
            }
            state = state.wrapping_add(0x9E3779B97F4A7C15);
        }
        Self(bytes)
    }
}

/// 8-byte payload (longitudes / longlat / lognormal).
pub type Payload8 = Payload<8>;
/// 80-byte payload (YCSB).
pub type Payload80 = Payload<80>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(core::mem::size_of::<Payload8>(), 8);
        assert_eq!(core::mem::size_of::<Payload80>(), 80);
    }

    #[test]
    fn deterministic_and_distinct() {
        let a = Payload::<80>::from_seed(1);
        let b = Payload::<80>::from_seed(1);
        let c = Payload::<80>::from_seed(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Not all-zero.
        assert!(a.0.iter().any(|&x| x != 0));
    }
}
