//! # `alex-sharded`: a sharded concurrent front-end for ALEX
//!
//! The ALEX paper (§7) names concurrency as the main follow-up: the
//! single-threaded index serves one writer at a time. This crate
//! range-partitions the key space across `N` independent shards with
//! boundaries drawn from a **sample CDF** of the bulk-load keys (the
//! same empirical-quantile trick as `alex_datasets::cdf`), so skewed
//! datasets (lognormal, longlat) still balance.
//!
//! ## The two read paths
//!
//! Each shard is served by one of two backends, chosen at
//! construction via [`ReadPath`]:
//!
//! - [`ReadPath::Epoch`] (**the default**): each shard is an
//!   [`EpochAlex`] — readers pin an epoch and descend the RMI with
//!   **no lock at all**, wait-free with respect to node splits;
//!   writers serialize per shard on an internal mutex and publish
//!   copy-on-write replacements through the epoch machinery
//!   (`alex_core::epoch`). Replaced nodes are retired and freed only
//!   once no pinned reader can still hold them.
//! - [`ReadPath::Locked`]: the pre-epoch design — each shard is an
//!   [`AlexIndex`] behind a `std::sync::RwLock`. Reads share the lock;
//!   a splitting writer stalls every reader of that shard.
//!
//! **How to choose.** `Epoch` is strictly better under read-heavy
//! concurrency and is what the multi-threaded driver and the Figure 5
//! thread sweeps use: readers never block, so split-induced tail
//! latency disappears from the read path. `Locked` remains for two
//! reasons: as the differential-testing oracle the consistency suite
//! compares against, and for memory-constrained runs (copy-on-write
//! keeps retired nodes alive until epochs turn, and delta buffers add
//! a bounded side-array per leaf).
//!
//! ## Epoch write amortization (delta buffers + run-level CoW)
//!
//! Epoch-path writes no longer clone a whole leaf per key. A point
//! write lands in the owning leaf's bounded **delta buffer** — a
//! sorted side-array published alongside the immutable leaf snapshot
//! (capacity via [`AlexConfig::delta_buffer`] /
//! `AlexConfig::with_delta_buffer`, `Fixed(0)` restores
//! clone-per-write, `Adaptive` lets each shard's `EpochAlex` re-derive
//! its own cap from observed write stats) —
//! and the buffer is folded into a fresh gapped array only when it
//! fills or the leaf splits; each flush retires the replaced leaf
//! node to the epoch garbage list, exactly like any other
//! publication. Readers merge base + buffer on the fly, so a
//! buffered write is visible the instant it is published.
//! [`ShardedAlex::bulk_insert`] additionally groups each shard's
//! sorted run by owning leaf and clones/publishes once per run.
//! [`ShardedAlex::write_stats`] aggregates the per-shard
//! `leaf_clones` / `delta_hits` / `flushes` counters that prove the
//! amortization (see the `fig_write_amp` bench bin).
//!
//! The type implements the full `alex-api` trait family:
//! [`IndexRead`] plus [`ConcurrentIndex`] (shared access, used by the
//! multi-threaded driver `run_workload_mt`), with [`IndexWrite`]
//! delegating `&mut self` calls to the `&self` surface and
//! [`BatchOps`] routed to the native per-shard sorted-run paths.
//!
//! ## Read-skew rebalancing
//!
//! Boundaries drawn from the bulk-load CDF equalize *key counts*, not
//! *traffic*: under a zipfian read mix one shard can absorb most
//! lookups while its neighbours idle. [`ShardedAlex::rebalance_plan`]
//! turns the per-shard lookup counters
//! ([`ShardedAlex::shard_read_stats`], `read-stats` feature) into a
//! replacement boundary set that equalizes estimated lookup mass, and
//! [`ShardedAlex::apply_rebalance`] restages the whole index in one
//! ordered pass: each new shard is staged and bulk-loaded exactly
//! once, and each source shard is dropped as soon as its keys are
//! consumed, so the transient footprint is one staged shard — never a
//! second copy of the index — and the work is linear in the key count
//! (a tombstone-based band drain would clone the shrinking source
//! leaf once per flush, quadratic in band length).
//!
//! **When to trigger it.** Rebalancing is a *maintenance operation*,
//! not a background daemon: call `rebalance_plan` after a
//! representative traffic window and apply it when the plan is
//! `Some` — the plan is `None` when there is no lookup signal (no
//! traffic yet, or `read-stats` compiled out), fewer than two shards,
//! or the skew is too small to move any boundary. `apply_rebalance`
//! takes `&mut self` (a quiesced index); `alex-server` exposes it as
//! a server-level maintenance op that drains the worker pool, applies
//! the plan, and restarts workers on the new boundaries. Typical
//! cadence: once after a workload shift — e.g. when
//! `shard_read_stats` shows the hottest shard taking several times
//! the mean — rather than on a timer.
//!
//! ## Consistency model
//! Every individual operation is atomic with respect to its shard.
//! A range scan that crosses shard boundaries visits one shard at a
//! time, so it observes each shard at a (possibly) different instant —
//! the usual relaxation for partitioned stores. On the epoch path the
//! same relaxation applies *within* a shard at leaf granularity: scans
//! walk immutable leaf snapshots, keys stay strictly increasing, and
//! every observed payload was live at some point (the property
//! `tests/epoch_concurrency.rs` stresses).
//!
//! ## Quickstart
//! ```
//! use alex_core::AlexConfig;
//! use alex_sharded::ShardedAlex;
//!
//! let data: Vec<(u64, u64)> = (0..100_000).map(|k| (k * 2, k)).collect();
//! let index = ShardedAlex::bulk_load(&data, 4, AlexConfig::ga_armi());
//! assert_eq!(index.num_shards(), 4);
//! assert_eq!(index.get(&20_000), Some(10_000));
//!
//! // Reads and writes take &self: share it across threads freely.
//! // On the (default) epoch path, these reads acquire no lock.
//! std::thread::scope(|s| {
//!     s.spawn(|| assert!(index.contains(&40_000)));
//!     s.spawn(|| assert!(index.insert(99, 99).is_ok()));
//! });
//! assert_eq!(index.get(&99), Some(99));
//! // At quiescence, every node retired by splits is reclaimable.
//! assert_eq!(index.flush_retired(), 0);
//! ```

#[cfg(feature = "durability")]
pub mod durable;
#[cfg(feature = "durability")]
pub use durable::DurableShardedAlex;

use std::sync::RwLock;

use alex_api::{BatchOps, ConcurrentIndex, IndexRead, IndexWrite, InsertError, SentinelKey};
use alex_core::stats::SizeReport;
use alex_core::{AlexConfig, AlexIndex, AlexKey, EpochAlex, EpochStats, EpochWriteStats};
use alex_datasets::cdf_points;

/// Which concurrency scheme serves a shard's reads. See the
/// [crate-level docs](crate) for how to choose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPath {
    /// Lock-free epoch-protected readers, mutex-serialized
    /// copy-on-write writers per shard (the default).
    #[default]
    Epoch,
    /// Readers and writers share a per-shard `RwLock`; splits block
    /// the shard's readers.
    Locked,
}

/// One shard's backend (see [`ReadPath`]).
#[derive(Debug)]
enum Shard<K, V> {
    Epoch(EpochAlex<K, V>),
    Locked(RwLock<AlexIndex<K, V>>),
}

impl<K: AlexKey, V: Clone + Default> Shard<K, V> {
    fn new(path: ReadPath, index: AlexIndex<K, V>) -> Self {
        match path {
            ReadPath::Epoch => Shard::Epoch(EpochAlex::from_index(index)),
            ReadPath::Locked => Shard::Locked(RwLock::new(index)),
        }
    }

    fn read(lock: &RwLock<AlexIndex<K, V>>) -> std::sync::RwLockReadGuard<'_, AlexIndex<K, V>> {
        lock.read().expect("shard lock poisoned")
    }

    fn write(lock: &RwLock<AlexIndex<K, V>>) -> std::sync::RwLockWriteGuard<'_, AlexIndex<K, V>> {
        lock.write().expect("shard lock poisoned")
    }

    fn get(&self, key: &K) -> Option<V> {
        match self {
            Shard::Epoch(s) => s.get(key),
            Shard::Locked(l) => Self::read(l).get(key).cloned(),
        }
    }

    fn contains(&self, key: &K) -> bool {
        match self {
            Shard::Epoch(s) => s.contains(key),
            Shard::Locked(l) => Self::read(l).contains_key(key),
        }
    }

    fn insert(&self, key: K, value: V) -> Result<(), InsertError> {
        match self {
            Shard::Epoch(s) => s.insert(key, value),
            Shard::Locked(l) => Self::write(l).insert(key, value),
        }
    }

    fn remove(&self, key: &K) -> Option<V> {
        match self {
            Shard::Epoch(s) => s.remove(key),
            Shard::Locked(l) => Self::write(l).remove(key),
        }
    }

    fn update(&self, key: &K, value: V) -> Option<V> {
        match self {
            Shard::Epoch(s) => s.update(key, value),
            Shard::Locked(l) => Self::write(l).update(key, value),
        }
    }

    fn scan_from(&self, key: &K, limit: usize, f: &mut impl FnMut(&K, &V)) -> usize {
        match self {
            Shard::Epoch(s) => s.scan_from(key, limit, &mut *f),
            Shard::Locked(l) => Self::read(l).scan_from(key, limit, &mut *f),
        }
    }

    fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        match self {
            Shard::Epoch(s) => s.get_many(keys),
            Shard::Locked(l) => {
                Self::read(l).get_many(keys).into_iter().map(|v| v.cloned()).collect()
            }
        }
    }

    fn bulk_insert(&self, pairs: &[(K, V)]) -> Result<usize, InsertError> {
        match self {
            Shard::Epoch(s) => s.bulk_insert(pairs),
            Shard::Locked(l) => Self::write(l).bulk_insert(pairs),
        }
    }

    fn len(&self) -> usize {
        match self {
            Shard::Epoch(s) => s.len(),
            Shard::Locked(l) => Self::read(l).len(),
        }
    }

    fn size_report(&self) -> SizeReport {
        match self {
            Shard::Epoch(s) => s.size_report(),
            Shard::Locked(l) => Self::read(l).size_report(),
        }
    }

    fn read_stats(&self) -> (u64, u64, u64) {
        match self {
            Shard::Epoch(s) => s.read_stats(),
            Shard::Locked(l) => Self::read(l).read_stats(),
        }
    }

    /// The configuration this shard's index was built with (every
    /// shard shares the `ShardedAlex` bulk-load config; the rebalance
    /// restager reads it off the first shard to build replacements).
    fn config(&self) -> AlexConfig {
        match self {
            Shard::Epoch(s) => *s.config(),
            Shard::Locked(l) => *Self::read(l).config(),
        }
    }

    /// Visit every live pair in key order — a full walk needing no
    /// start key (the rebalance planner's rank probe; shard 0 has no
    /// lower boundary to scan from).
    fn for_each_pair(&self, f: &mut impl FnMut(&K, &V)) {
        match self {
            Shard::Epoch(s) => s.leaf_snapshots(|pairs| {
                for (k, v) in pairs {
                    f(k, v);
                }
            }),
            Shard::Locked(l) => {
                for (k, v) in Self::read(l).iter() {
                    f(k, v);
                }
            }
        }
    }
}

/// One shard's read-counter snapshot (see
/// [`ShardedAlex::shard_read_stats`]). All zero when the `read-stats`
/// feature of `alex-core` is off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardReadStats {
    /// Lookups served by this shard.
    pub lookups: u64,
    /// Key comparisons across those lookups.
    pub comparisons: u64,
    /// Lookups that hit the model-predicted slot directly.
    pub direct_hits: u64,
}

/// A proposed replacement boundary set computed by
/// [`ShardedAlex::rebalance_plan`] from per-shard lookup skew. Apply
/// it with [`ShardedAlex::apply_rebalance`]; see the crate docs'
/// *Read-skew rebalancing* section for when to trigger one.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalancePlan<K> {
    /// Strictly increasing replacement for
    /// [`ShardedAlex::boundaries`] (same length, so the shard count is
    /// preserved).
    pub boundaries: Vec<K>,
    /// The per-shard lookup counts the plan was computed from
    /// (diagnostics; also what tests assert skew against).
    pub shard_lookups: Vec<u64>,
}

/// What one [`ShardedAlex::apply_rebalance`] call moved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Entries that ended up in a different shard than the one that
    /// owned them before the boundary switch.
    pub moved_keys: usize,
    /// Contiguous key bands those entries moved in: maximal key-order
    /// runs sharing one (source, destination) shard pair.
    pub bands: usize,
}

/// Range-partitioned ALEX shards with a lock-free (epoch) or locked
/// read path per shard.
///
/// See the [crate-level docs](crate) for the design, the two read
/// paths, and the consistency model.
#[derive(Debug)]
pub struct ShardedAlex<K, V> {
    shards: Vec<Shard<K, V>>,
    /// `boundaries[i]` is the smallest key owned by shard `i + 1`
    /// (strictly increasing, `len() == shards.len() - 1`).
    boundaries: Vec<K>,
    path: ReadPath,
}

impl<K: AlexKey, V: Clone + Default> ShardedAlex<K, V> {
    /// Bulk-load `pairs` (sorted, strictly increasing by key) into
    /// `num_shards` shards with boundaries drawn from the sample CDF,
    /// on the default (epoch) read path.
    ///
    /// Duplicate quantiles (heavily skewed data with few distinct
    /// sample points) are merged, so the effective shard count can be
    /// lower than requested.
    ///
    /// # Panics
    /// Panics if `num_shards == 0`, or (debug builds) if `pairs` is not
    /// strictly increasing by key.
    pub fn bulk_load(pairs: &[(K, V)], num_shards: usize, config: AlexConfig) -> Self {
        Self::bulk_load_in(ReadPath::Epoch, pairs, num_shards, config)
    }

    /// [`ShardedAlex::bulk_load`] with an explicit [`ReadPath`].
    pub fn bulk_load_in(
        path: ReadPath,
        pairs: &[(K, V)],
        num_shards: usize,
        config: AlexConfig,
    ) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load input must be strictly increasing"
        );
        let boundaries = sample_cdf_boundaries(pairs, num_shards).into_boundaries();
        let mut shards = Vec::with_capacity(boundaries.len() + 1);
        let mut rest = pairs;
        for bound in &boundaries {
            let cut = rest.partition_point(|(k, _)| k < bound);
            let (run, tail) = rest.split_at(cut);
            shards.push(Shard::new(path, AlexIndex::bulk_load(run, config)));
            rest = tail;
        }
        shards.push(Shard::new(path, AlexIndex::bulk_load(rest, config)));
        Self {
            shards,
            boundaries,
            path,
        }
    }

    /// Bulk-load from an iterator of **globally sorted blocks** (each
    /// block sorted, every key in block `i+1` greater than every key in
    /// block `i`) — e.g. `alex_datasets::SortedBlocks`. Only one
    /// shard's worth of pairs is buffered at a time, so loads never
    /// need the whole dataset in one `Vec`. Uses the default (epoch)
    /// read path.
    ///
    /// `boundaries` must be strictly increasing; shard `i + 1` owns
    /// keys `>= boundaries[i]`. The final shard count is always
    /// `boundaries.len() + 1`, including the corners: empty blocks
    /// yield that many empty shards, and blocks whose keys all fall
    /// below the first (or above the last) boundary leave the other
    /// shards empty.
    ///
    /// # Panics
    /// Panics — in **all** build profiles — if `boundaries` is not
    /// strictly increasing: a non-monotone boundary list silently
    /// corrupts routing (`route_key` binary-searches it), so the check
    /// is a release-mode `assert!`, O(boundaries) next to the O(keys)
    /// load. Non-globally-sorted blocks panic in debug builds only
    /// (the per-key check is on the streaming hot path).
    pub fn bulk_load_blocks(
        blocks: impl IntoIterator<Item = Vec<(K, V)>>,
        boundaries: Vec<K>,
        config: AlexConfig,
    ) -> Self {
        Self::bulk_load_blocks_in(ReadPath::Epoch, blocks, boundaries, config)
    }

    /// [`ShardedAlex::bulk_load_blocks`] with an explicit
    /// [`ReadPath`]. Same contract, including the release-mode
    /// boundary-monotonicity panic.
    pub fn bulk_load_blocks_in(
        path: ReadPath,
        blocks: impl IntoIterator<Item = Vec<(K, V)>>,
        boundaries: Vec<K>,
        config: AlexConfig,
    ) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "shard boundaries must be strictly increasing"
        );
        let num_shards = boundaries.len() + 1;
        let mut shards: Vec<Shard<K, V>> = Vec::with_capacity(num_shards);
        let mut buffer: Vec<(K, V)> = Vec::new();
        let mut prev_key: Option<K> = None;
        for block in blocks {
            for (key, value) in block {
                debug_assert!(
                    prev_key.is_none_or(|p| p < key),
                    "blocks must be globally sorted and strictly increasing"
                );
                prev_key = Some(key);
                while shards.len() < boundaries.len() && key >= boundaries[shards.len()] {
                    shards.push(Shard::new(path, AlexIndex::bulk_load(&buffer, config)));
                    buffer.clear();
                }
                buffer.push((key, value));
            }
        }
        // Flush the tail and any remaining empty shards.
        while shards.len() < num_shards {
            shards.push(Shard::new(path, AlexIndex::bulk_load(&buffer, config)));
            buffer.clear();
        }
        Self {
            shards,
            boundaries,
            path,
        }
    }

    /// An empty index with `boundaries.len() + 1` shards split at
    /// `boundaries` (cold start; every shard grows by
    /// inserts/splits), on the default (epoch) read path.
    ///
    /// # Panics
    /// Panics (all build profiles) if `boundaries` is not strictly
    /// increasing — see [`ShardedAlex::bulk_load_blocks`].
    pub fn new(boundaries: Vec<K>, config: AlexConfig) -> Self {
        Self::new_in(ReadPath::Epoch, boundaries, config)
    }

    /// [`ShardedAlex::new`] with an explicit [`ReadPath`].
    pub fn new_in(path: ReadPath, boundaries: Vec<K>, config: AlexConfig) -> Self {
        Self::bulk_load_blocks_in(path, core::iter::empty(), boundaries, config)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which read path this index was built with.
    pub fn read_path(&self) -> ReadPath {
        self.path
    }

    /// The shard boundaries (shard `i + 1` owns keys `>= boundaries[i]`).
    pub fn boundaries(&self) -> &[K] {
        &self.boundaries
    }

    /// Which shard owns `key`.
    #[inline]
    fn shard_for(&self, key: &K) -> usize {
        route_key(&self.boundaries, key)
    }

    /// Look up `key`, cloning the payload out of the shard. On the
    /// epoch path this takes no lock.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shards[self.shard_for(key)].get(key)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.shards[self.shard_for(key)].contains(key)
    }

    /// Insert a pair; [`InsertError::DuplicateKey`] when present and
    /// [`InsertError::UnsupportedKey`] for the reserved sentinel. Takes
    /// `&self`: only the owning shard's writer is serialized.
    pub fn insert(&self, key: K, value: V) -> Result<(), InsertError> {
        self.shards[self.shard_for(&key)].insert(key, value)
    }

    /// Remove `key`, returning its payload.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shards[self.shard_for(key)].remove(key)
    }

    /// Replace the payload of an existing key, returning the old value.
    pub fn update(&self, key: &K, value: V) -> Option<V> {
        self.shards[self.shard_for(key)].update(key, value)
    }

    /// Visit up to `limit` entries with key `>= key` in order. Crosses
    /// shard boundaries (one shard at a time). Returns the number of
    /// entries visited.
    pub fn scan_from(&self, key: &K, limit: usize, mut f: impl FnMut(&K, &V)) -> usize {
        let mut visited = 0usize;
        for shard in self.shard_for(key)..self.shards.len() {
            if visited >= limit {
                break;
            }
            // Keys in later shards are all `>= key` (they sit above the
            // boundary that routed `key`), so the same lower bound works
            // in every shard.
            visited += self.shards[shard].scan_from(key, limit - visited, &mut f);
        }
        visited
    }

    /// Split a key-sorted slice into maximal per-shard runs and invoke
    /// `f` once per `(shard, run)` (delegates to the free function
    /// [`split_sorted_runs`] over this index's boundaries).
    fn for_each_shard_run<'a, T>(
        &self,
        items: &'a [T],
        key_of: impl Fn(&T) -> &K,
        f: impl FnMut(usize, &'a [T]),
    ) {
        split_sorted_runs(&self.boundaries, items, key_of, f);
    }

    /// Sorted-batch lookup: keys are split into per-shard runs, each
    /// served by the shard's native `get_many` (one epoch pin, or one
    /// lock acquisition, per run).
    ///
    /// # Panics
    /// Panics (debug builds) if `keys` is not sorted non-decreasing.
    pub fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        debug_assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "get_many input must be sorted"
        );
        let mut out = Vec::with_capacity(keys.len());
        self.for_each_shard_run(keys, |k| k, |shard, run| {
            out.extend(self.shards[shard].get_many(run));
        });
        out
    }

    /// Sorted-batch insert: pairs are split into per-shard runs, each
    /// served by the shard's native `bulk_insert`. Returns the number
    /// of pairs inserted (duplicates skipped).
    ///
    /// A batch containing the reserved sentinel is rejected up front
    /// with [`InsertError::UnsupportedKey`] and **nothing** is applied
    /// — the check must happen before run-splitting because the
    /// sentinel sorts last and routes to the last shard, by which point
    /// earlier shards' runs would already be visible.
    ///
    /// # Panics
    /// Panics (debug builds) if `pairs` is not sorted by key.
    pub fn bulk_insert(&self, pairs: &[(K, V)]) -> Result<usize, InsertError> {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_insert input must be sorted by key"
        );
        if pairs.last().is_some_and(|(k, _)| k.is_sentinel()) {
            return Err(InsertError::UnsupportedKey);
        }
        let mut inserted = 0usize;
        self.for_each_shard_run(pairs, |(k, _)| k, |shard, run| {
            inserted += self.shards[shard]
                .bulk_insert(run)
                .expect("sentinel rejected up front, runs cannot fail");
        });
        Ok(inserted)
    }

    /// Total number of stored entries (sums shard lengths; each shard
    /// is read at a possibly different instant).
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry counts per shard (load-balance diagnostics).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(Shard::len).collect()
    }

    /// Aggregated §5.1 size accounting across shards.
    pub fn size_report(&self) -> SizeReport {
        let mut total = SizeReport::default();
        for shard in &self.shards {
            let r = shard.size_report();
            total.index_bytes += r.index_bytes;
            total.data_bytes += r.data_bytes;
            total.num_data_nodes += r.num_data_nodes;
            total.num_inner_nodes += r.num_inner_nodes;
        }
        total
    }

    /// Aggregated epoch write-amplification counters across shards
    /// (all zero on the locked path, which writes in place under its
    /// `RwLock`): full leaf clones, delta-buffer hits, and flushes.
    pub fn write_stats(&self) -> EpochWriteStats {
        let mut total = EpochWriteStats::default();
        for shard in &self.shards {
            if let Shard::Epoch(s) = shard {
                let stats = s.write_stats();
                total.leaf_clones += stats.leaf_clones;
                total.delta_hits += stats.delta_hits;
                total.flushes += stats.flushes;
            }
        }
        total
    }

    /// Aggregated epoch-reclamation counters across shards (all zero
    /// on the locked path; `global_epoch` is the maximum over shards).
    pub fn epoch_stats(&self) -> EpochStats {
        let mut total = EpochStats::default();
        for shard in &self.shards {
            if let Shard::Epoch(s) = shard {
                let stats = s.epoch_stats();
                total.global_epoch = total.global_epoch.max(stats.global_epoch);
                total.pending += stats.pending;
                total.retired_total += stats.retired_total;
                total.freed_total += stats.freed_total;
            }
        }
        total
    }

    /// Drive every shard's retire list toward empty; returns the
    /// number of nodes still pending across shards. At quiescence (no
    /// concurrent readers) this reaches 0 on the epoch path, and is
    /// trivially 0 on the locked path.
    pub fn flush_retired(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| match shard {
                Shard::Epoch(s) => s.flush_retired(),
                Shard::Locked(_) => 0,
            })
            .sum()
    }

    // ------------------------------------------------------------------
    // Read-skew rebalancing (see the crate docs)
    // ------------------------------------------------------------------

    /// Per-shard read counters, in shard order. Counters are advisory
    /// load signals (they ride leaf snapshots and relaxed atomics) and
    /// are all zero without the `read-stats` feature; take before/after
    /// snapshots to measure one traffic window.
    pub fn shard_read_stats(&self) -> Vec<ShardReadStats> {
        self.shards
            .iter()
            .map(|shard| {
                let (lookups, comparisons, direct_hits) = shard.read_stats();
                ShardReadStats {
                    lookups,
                    comparisons,
                    direct_hits,
                }
            })
            .collect()
    }

    /// Propose boundaries that equalize estimated lookup mass across
    /// shards, assuming lookups spread uniformly within each current
    /// shard (the per-shard counters are the only signal; there is no
    /// per-key histogram). Cut keys are found by rank through one
    /// in-order walk, so the plan costs `O(n)` time and `O(shards)`
    /// extra space.
    ///
    /// Returns `None` when there is nothing to do: fewer than two
    /// shards, no recorded lookups (no traffic yet, or `read-stats`
    /// compiled out), fewer stored keys than shards, or a plan
    /// identical to the current boundaries.
    pub fn rebalance_plan(&self) -> Option<RebalancePlan<K>> {
        let num_shards = self.shards.len();
        if num_shards < 2 {
            return None;
        }
        let lookups: Vec<u64> = self.shards.iter().map(|s| s.read_stats().0).collect();
        let total: u64 = lookups.iter().sum();
        if total == 0 {
            return None;
        }
        let lens = self.shard_lens();
        let total_len: usize = lens.iter().sum();
        if total_len < num_shards {
            return None;
        }

        // Global ranks where cumulative estimated mass crosses each
        // multiple of the per-shard target.
        let target = total as f64 / num_shards as f64;
        let num_cuts = num_shards - 1;
        let mut cuts: Vec<usize> = Vec::with_capacity(num_cuts);
        let mut shard = 0usize;
        let mut mass_before = 0f64; // lookup mass below `shard`
        let mut offset = 0usize; // global rank of `shard`'s first key
        for j in 1..num_shards {
            let want = j as f64 * target;
            while shard + 1 < num_shards && mass_before + lookups[shard] as f64 <= want {
                mass_before += lookups[shard] as f64;
                offset += lens[shard];
                shard += 1;
            }
            let mass = lookups[shard] as f64;
            let frac = if mass > 0.0 {
                ((want - mass_before) / mass).clamp(0.0, 1.0)
            } else {
                0.0
            };
            cuts.push(offset + (frac * lens[shard] as f64) as usize);
        }
        // Monotonize: each cut strictly above the previous one, and
        // low/high enough that every shard keeps at least one key.
        let mut prev = 0usize;
        for (i, cut) in cuts.iter_mut().enumerate() {
            *cut = (*cut).max(prev + 1).min(total_len - (num_cuts - i));
            prev = *cut;
        }

        // One in-order walk across shards turns ranks into keys.
        let mut boundaries: Vec<K> = Vec::with_capacity(num_cuts);
        let mut rank = 0usize;
        let mut next_cut = 0usize;
        for s in &self.shards {
            if next_cut >= cuts.len() {
                break;
            }
            s.for_each_pair(&mut |k, _| {
                if next_cut < cuts.len() && rank == cuts[next_cut] {
                    boundaries.push(*k);
                    next_cut += 1;
                }
                rank += 1;
            });
        }
        // Concurrent removals can shrink shards under the walk; a
        // partial boundary set is not a usable plan.
        if boundaries.len() != num_cuts || boundaries == self.boundaries {
            return None;
        }
        Some(RebalancePlan {
            boundaries,
            shard_lookups: lookups,
        })
    }

    /// Apply a [`RebalancePlan`]: restage every shard under the new
    /// boundaries in one ordered pass, then switch the routing. Keys
    /// are drained from the old shards in global key order into a
    /// staging buffer that is bulk-loaded into a fresh shard each time
    /// the walk crosses a plan boundary; each old shard is dropped as
    /// soon as its keys are consumed. The transient footprint is one
    /// staged shard (the staging buffer is reused across flushes), and
    /// the work is linear in the total key count — unlike a
    /// remove-based band drain, whose tombstone flushes re-clone the
    /// shrinking source leaf once per buffer fill, O(band · leaf)
    /// copies. Requires `&mut self`: routing consults `boundaries` on
    /// every operation, so the switch must not race in-flight
    /// requests. `alex-server` wraps this in a drain → apply → restart
    /// maintenance op.
    ///
    /// # Panics
    /// Panics if the plan's boundary count differs from the current
    /// one or its boundaries are not strictly increasing (a
    /// hand-rolled plan; [`ShardedAlex::rebalance_plan`] upholds
    /// both).
    pub fn apply_rebalance(&mut self, plan: &RebalancePlan<K>) -> RebalanceReport {
        assert_eq!(
            plan.boundaries.len(),
            self.boundaries.len(),
            "plan must preserve the shard count"
        );
        assert!(
            plan.boundaries.windows(2).all(|w| w[0] < w[1]),
            "plan boundaries must be strictly increasing"
        );
        let path = self.path;
        let config = self.shards[0].config();
        let num_shards = self.shards.len();
        let empty = |path, config| Shard::new(path, AlexIndex::bulk_load(&[], config));

        let mut new_shards: Vec<Shard<K, V>> = Vec::with_capacity(num_shards);
        let mut staging: Vec<(K, V)> = Vec::new();
        let mut report = RebalanceReport::default();
        // A band is a maximal run of moved keys sharing one
        // (source, destination) pair; the walk is in global key order,
        // so tracking the previous key's pair suffices to count runs.
        let mut prev_move: Option<(usize, usize)> = None;
        for src in 0..num_shards {
            // Take the source shard out so it can be freed the moment
            // its keys are staged — the peak holds one old shard plus
            // one staging buffer beyond the already-rebuilt prefix.
            let old = std::mem::replace(&mut self.shards[src], empty(path, config));
            old.for_each_pair(&mut |k, v| {
                while new_shards.len() < plan.boundaries.len()
                    && *k >= plan.boundaries[new_shards.len()]
                {
                    new_shards.push(Shard::new(path, AlexIndex::bulk_load(&staging, config)));
                    staging.clear();
                }
                let dst = new_shards.len();
                if dst == src {
                    prev_move = None;
                } else {
                    report.moved_keys += 1;
                    if prev_move != Some((src, dst)) {
                        report.bands += 1;
                    }
                    prev_move = Some((src, dst));
                }
                staging.push((*k, v.clone()));
            });
            drop(old);
        }
        // Flush the tail, then top up with empty shards for any plan
        // boundaries the walk never reached.
        while new_shards.len() < num_shards {
            new_shards.push(Shard::new(path, AlexIndex::bulk_load(&staging, config)));
            staging.clear();
        }
        self.shards = new_shards;
        self.boundaries = plan.boundaries.clone();
        report
    }
}

/// Which shard owns `key` under `boundaries` (shard `i + 1` owns keys
/// `>= boundaries[i]`) — the single routing rule shared by
/// [`ShardedAlex`], `DurableShardedAlex`, and external routers such as
/// `alex-server`'s request dispatcher. `boundaries` must be strictly
/// increasing.
#[inline]
pub fn route_key<K: PartialOrd>(boundaries: &[K], key: &K) -> usize {
    boundaries.partition_point(|b| b <= key)
}

/// Split a key-sorted slice into maximal per-shard runs under
/// `boundaries` and invoke `f` once per `(shard, run)` in ascending
/// shard order. This is the single place that pairs the `k < boundary`
/// run cut with [`route_key`]'s `boundary <= k` rule, so keys equal to
/// a boundary go to the same shard on both paths. `items` must be
/// sorted non-decreasing under `key_of`.
pub fn split_sorted_runs<'a, K: PartialOrd, T>(
    boundaries: &[K],
    items: &'a [T],
    key_of: impl Fn(&T) -> &K,
    mut f: impl FnMut(usize, &'a [T]),
) {
    let mut rest = items;
    while let Some(first) = rest.first() {
        let shard = route_key(boundaries, key_of(first));
        let run_len = if shard < boundaries.len() {
            let bound = &boundaries[shard];
            rest.partition_point(|t| key_of(t) < bound)
        } else {
            rest.len()
        };
        let (run, tail) = rest.split_at(run_len);
        f(shard, run);
        rest = tail;
    }
}

/// The outcome of [`sample_cdf_boundaries`]: the boundary keys plus
/// enough bookkeeping to tell whether duplicate quantiles collapsed
/// the requested shard count. Callers that silently unwrap
/// `boundaries` used to get fewer shards than they asked for with no
/// signal; check [`BoundaryPlan::collapsed`] (or compare
/// [`BoundaryPlan::effective_shards`] against what you requested)
/// before sizing anything — worker pools, CSV labels, rebalance
/// targets — off `num_shards`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryPlan<K> {
    /// Strictly increasing boundary keys; shard `i + 1` owns keys
    /// `>= boundaries[i]`.
    pub boundaries: Vec<K>,
    /// The shard count the caller asked for.
    pub requested_shards: usize,
}

impl<K> BoundaryPlan<K> {
    /// The shard count these boundaries actually produce
    /// (`boundaries.len() + 1`).
    pub fn effective_shards(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Whether duplicate or insufficient quantiles collapsed the
    /// requested shard count.
    pub fn collapsed(&self) -> bool {
        self.effective_shards() < self.requested_shards
    }

    /// Unwrap the boundary keys.
    pub fn into_boundaries(self) -> Vec<K> {
        self.boundaries
    }
}

/// Shard boundaries from the sample CDF of sorted `pairs`: sample up to
/// 64Ki keys evenly by rank, then take the `num_shards - 1` interior
/// quantiles (via [`alex_datasets::cdf_points`]) and dedup. Public so
/// external front-ends (e.g. `alex-server`'s load generator) can derive
/// routing boundaries the same way [`ShardedAlex::bulk_load`] does.
///
/// Duplicate-heavy input (repeated keys, or fewer distinct sample
/// points than shards) yields duplicate quantiles; those are merged,
/// so the effective shard count can be **lower than requested**. The
/// returned [`BoundaryPlan`] makes that observable instead of silent —
/// inspect [`BoundaryPlan::collapsed`] when the exact count matters.
pub fn sample_cdf_boundaries<K: AlexKey, V>(pairs: &[(K, V)], num_shards: usize) -> BoundaryPlan<K> {
    if num_shards <= 1 || pairs.len() < 2 {
        return BoundaryPlan {
            boundaries: Vec::new(),
            requested_shards: num_shards,
        };
    }
    let stride = (pairs.len() / 65_536).max(1);
    let sample: Vec<K> = pairs.iter().step_by(stride).map(|p| p.0).collect();
    let points = cdf_points(&sample, (num_shards + 1).min(sample.len()));
    let mut boundaries: Vec<K> = points
        .into_iter()
        .skip(1)
        .take(num_shards - 1)
        .map(|(k, _)| k)
        .collect();
    boundaries.dedup_by(|a, b| a == b);
    BoundaryPlan {
        boundaries,
        requested_shards: num_shards,
    }
}

impl<K: AlexKey, V: Clone + Default> IndexRead<K, V> for ShardedAlex<K, V> {
    fn get(&self, key: &K) -> Option<V> {
        ShardedAlex::get(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        ShardedAlex::contains(self, key)
    }

    fn scan_from(&self, key: &K, limit: usize, visit: &mut dyn FnMut(&K, &V)) -> usize {
        ShardedAlex::scan_from(self, key, limit, |k, v| visit(k, v))
    }

    fn len(&self) -> usize {
        ShardedAlex::len(self)
    }

    fn index_size_bytes(&self) -> usize {
        self.size_report().index_bytes
    }

    fn data_size_bytes(&self) -> usize {
        self.size_report().data_bytes
    }

    fn label(&self) -> String {
        match self.path {
            ReadPath::Epoch => format!("ShardedAlex[{}]", self.num_shards()),
            ReadPath::Locked => format!("ShardedAlex[{};locked]", self.num_shards()),
        }
    }
}

impl<K, V> ConcurrentIndex<K, V> for ShardedAlex<K, V>
where
    K: AlexKey + Send + Sync,
    V: Clone + Default + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> Result<(), InsertError> {
        ShardedAlex::insert(self, key, value)
    }

    fn remove(&self, key: &K) -> Option<V> {
        ShardedAlex::remove(self, key)
    }

    fn bulk_insert(&self, pairs: &[(K, V)]) -> Result<usize, InsertError>
    where
        K: SentinelKey + Clone,
        V: Clone,
    {
        // Native path: per-shard runs, and per-leaf runs within each
        // epoch shard (one CoW publication per leaf run).
        ShardedAlex::bulk_insert(self, pairs)
    }
}

// Exclusive-access delegation (see `alex-api`'s crate docs for why a
// blanket impl cannot provide this): `&mut self` writes route through
// the internally synchronized `&self` paths.
impl<K, V> IndexWrite<K, V> for ShardedAlex<K, V>
where
    K: AlexKey + Send + Sync,
    V: Clone + Default + Send + Sync,
{
    fn insert(&mut self, key: K, value: V) -> Result<(), InsertError> {
        ConcurrentIndex::insert(self, key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        ConcurrentIndex::remove(self, key)
    }

    fn bulk_load(&mut self, pairs: &[(K, V)]) -> Result<usize, InsertError>
    where
        K: SentinelKey + Clone,
        V: Clone,
    {
        debug_assert!(ShardedAlex::is_empty(self), "bulk_load expects an empty index");
        ShardedAlex::bulk_insert(self, pairs)
    }
}

impl<K, V> BatchOps<K, V> for ShardedAlex<K, V>
where
    K: AlexKey + Send + Sync,
    V: Clone + Default + Send + Sync,
{
    fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        ShardedAlex::get_many(self, keys)
    }

    fn bulk_insert(&mut self, pairs: &[(K, V)]) -> Result<usize, InsertError>
    where
        K: SentinelKey + Clone,
        V: Clone,
    {
        ShardedAlex::bulk_insert(self, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOTH_PATHS: [ReadPath; 2] = [ReadPath::Epoch, ReadPath::Locked];

    fn pairs(n: u64, stride: u64) -> Vec<(u64, u64)> {
        (0..n).map(|k| (k * stride, k)).collect()
    }

    #[test]
    fn bulk_load_partitions_evenly_on_uniform_keys() {
        for path in BOTH_PATHS {
            let index = ShardedAlex::bulk_load_in(path, &pairs(40_000, 2), 4, AlexConfig::ga_armi());
            assert_eq!(index.num_shards(), 4);
            assert_eq!(index.read_path(), path);
            assert_eq!(index.len(), 40_000);
            for len in index.shard_lens() {
                assert!((8000..=12_000).contains(&len), "shard sizes {:?}", index.shard_lens());
            }
        }
    }

    #[test]
    fn get_routes_across_boundaries() {
        for path in BOTH_PATHS {
            let index = ShardedAlex::bulk_load_in(path, &pairs(10_000, 3), 8, AlexConfig::ga_armi());
            for k in (0..10_000u64).step_by(7) {
                assert_eq!(index.get(&(k * 3)), Some(k), "key {}", k * 3);
                assert_eq!(index.get(&(k * 3 + 1)), None);
            }
        }
    }

    #[test]
    fn insert_remove_update_roundtrip() {
        for path in BOTH_PATHS {
            let index = ShardedAlex::bulk_load_in(path, &pairs(1000, 2), 4, AlexConfig::ga_armi());
            assert!(index.insert(1001, 7).is_ok());
            assert!(index.insert(1001, 8).is_err(), "duplicate must be rejected");
            assert_eq!(index.get(&1001), Some(7));
            assert_eq!(index.update(&1001, 9), Some(7));
            assert_eq!(index.remove(&1001), Some(9));
            assert_eq!(index.get(&1001), None);
            assert_eq!(index.len(), 1000);
        }
    }

    #[test]
    fn scan_crosses_shard_boundaries() {
        for path in BOTH_PATHS {
            let index = ShardedAlex::bulk_load_in(path, &pairs(10_000, 1), 4, AlexConfig::ga_armi());
            // Start 300 keys below the last shard boundary so the 500-entry
            // window must cross into the next shard.
            let boundary = index.boundaries()[2];
            let start = boundary - 300;
            let mut seen = Vec::new();
            let visited = index.scan_from(&start, 500, |k, _| seen.push(*k));
            assert_eq!(visited, 500);
            assert_eq!(seen, (start..start + 500).collect::<Vec<u64>>());
            assert!(start + 500 > boundary, "window must span two shards");
        }
    }

    #[test]
    fn skewed_keys_still_balance_by_cdf() {
        // Cubic growth: uniform-domain splits would put almost
        // everything in shard 0; CDF splits keep shards comparable.
        let data: Vec<(u64, u64)> = (1..20_000u64).map(|k| (k * k * k, k)).collect();
        let index = ShardedAlex::bulk_load(&data, 4, AlexConfig::ga_armi());
        let lens = index.shard_lens();
        let max = *lens.iter().max().unwrap();
        let min = *lens.iter().min().unwrap();
        assert!(max < min * 2 + 64, "imbalanced shards {lens:?}");
    }

    #[test]
    fn get_many_and_bulk_insert_span_shards() {
        for path in BOTH_PATHS {
            let index = ShardedAlex::bulk_load_in(path, &pairs(10_000, 4), 4, AlexConfig::ga_armi());
            let queries: Vec<u64> = (0..20_000u64).step_by(3).collect();
            let got = index.get_many(&queries);
            for (q, v) in queries.iter().zip(&got) {
                assert_eq!(*v, index.get(q), "key {q}");
            }
            let fresh: Vec<(u64, u64)> = (0..10_000u64).map(|k| (k * 4 + 1, k)).collect();
            assert_eq!(index.bulk_insert(&fresh), Ok(10_000));
            assert_eq!(index.bulk_insert(&fresh), Ok(0), "second pass is all duplicates");
            assert_eq!(index.len(), 20_000);
        }
    }

    #[test]
    fn concurrent_readers_and_writers() {
        for path in BOTH_PATHS {
            let index = ShardedAlex::bulk_load_in(path, &pairs(10_000, 2), 4, AlexConfig::ga_armi());
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let index = &index;
                    s.spawn(move || {
                        for k in 0..2000u64 {
                            // Reads of stable keys must always succeed.
                            assert_eq!(index.get(&(k * 2)), Some(k));
                            // Writes land in disjoint per-thread key ranges.
                            assert!(index.insert(100_000 + t * 10_000 + k, k).is_ok());
                        }
                    });
                }
            });
            assert_eq!(index.len(), 10_000 + 4 * 2000);
            assert_eq!(index.flush_retired(), 0, "retire lists drain at quiescence");
        }
    }

    #[test]
    fn route_key_and_split_sorted_runs_agree() {
        let boundaries = [10u64, 20, 30];
        assert_eq!(route_key(&boundaries, &0), 0);
        assert_eq!(route_key(&boundaries, &9), 0);
        assert_eq!(route_key(&boundaries, &10), 1, "boundary key belongs to the upper shard");
        assert_eq!(route_key(&boundaries, &29), 2);
        assert_eq!(route_key(&boundaries, &30), 3);
        let items: Vec<u64> = vec![1, 9, 10, 15, 30, 40];
        let mut runs = Vec::new();
        split_sorted_runs(&boundaries, &items, |k| k, |shard, run| {
            runs.push((shard, run.to_vec()));
        });
        assert_eq!(runs, vec![(0, vec![1, 9]), (1, vec![10, 15]), (3, vec![30, 40])]);
        // Every item routes to the shard its run was assigned.
        for (shard, run) in &runs {
            for k in run {
                assert_eq!(route_key(&boundaries, k), *shard);
            }
        }
    }

    #[test]
    fn single_shard_degenerates_gracefully() {
        let index = ShardedAlex::bulk_load(&pairs(1000, 1), 1, AlexConfig::ga_armi());
        assert_eq!(index.num_shards(), 1);
        assert!(index.boundaries().is_empty());
        assert_eq!(index.get(&500), Some(500));
    }

    #[test]
    fn empty_and_cold_start() {
        for path in BOTH_PATHS {
            let empty: ShardedAlex<u64, u64> =
                ShardedAlex::bulk_load_in(path, &[], 4, AlexConfig::ga_armi());
            assert!(empty.is_empty());
            assert_eq!(empty.get(&1), None);

            let cold: ShardedAlex<u64, u64> =
                ShardedAlex::new_in(path, vec![100, 200], AlexConfig::ga_armi());
            assert_eq!(cold.num_shards(), 3);
            for k in 0..300u64 {
                assert!(cold.insert(k, k).is_ok());
            }
            assert_eq!(cold.len(), 300);
            assert_eq!(cold.shard_lens(), vec![100, 100, 100]);
        }
    }

    #[test]
    fn blocks_loading_matches_flat_loading() {
        let data = pairs(10_000, 3);
        let flat = ShardedAlex::bulk_load(&data, 4, AlexConfig::ga_armi());
        let blocks: Vec<Vec<(u64, u64)>> = data.chunks(777).map(|c| c.to_vec()).collect();
        let streamed =
            ShardedAlex::bulk_load_blocks(blocks, flat.boundaries().to_vec(), AlexConfig::ga_armi());
        assert_eq!(streamed.num_shards(), flat.num_shards());
        assert_eq!(streamed.shard_lens(), flat.shard_lens());
        for k in (0..10_000u64).step_by(11) {
            assert_eq!(streamed.get(&(k * 3)), Some(k));
        }
    }

    #[test]
    fn epoch_path_retires_nodes_under_split_churn() {
        let index: ShardedAlex<u64, u64> = ShardedAlex::new_in(
            ReadPath::Epoch,
            vec![5000, 10_000],
            AlexConfig::ga_armi().with_max_node_keys(128).with_splitting(),
        );
        for k in 0..15_000u64 {
            assert!(index.insert(k, k * 7).is_ok());
        }
        let stats = index.epoch_stats();
        assert!(stats.retired_total > 0, "split churn must retire nodes");
        assert_eq!(index.flush_retired(), 0);
        let stats = index.epoch_stats();
        assert_eq!(stats.retired_total, stats.freed_total, "exactly-once reclamation");
        for k in (0..15_000u64).step_by(17) {
            assert_eq!(index.get(&k), Some(k * 7));
        }
    }

    #[test]
    fn locked_path_reports_zero_epoch_activity() {
        let index = ShardedAlex::bulk_load_in(ReadPath::Locked, &pairs(1000, 1), 2, AlexConfig::ga_armi());
        assert!(index.insert(5000, 1).is_ok());
        assert_eq!(index.epoch_stats(), EpochStats::default());
        assert_eq!(
            index.write_stats(),
            EpochWriteStats::default(),
            "locked shards write in place: no clones, no buffers"
        );
        assert_eq!(index.flush_retired(), 0);
        assert_eq!(
            IndexRead::<u64, u64>::label(&index),
            "ShardedAlex[2;locked]"
        );
    }

    #[test]
    fn duplicate_heavy_samples_report_boundary_collapse() {
        // Only 3 distinct keys, massively repeated: the interior
        // quantiles all land on the same few keys, dedup merges them,
        // and the old Vec<K> return gave no hint the caller got fewer
        // shards than requested.
        let mut dupes: Vec<(u64, u64)> = Vec::new();
        for k in [10u64, 20, 30] {
            dupes.extend(std::iter::repeat_n((k, k), 4000));
        }
        let plan = sample_cdf_boundaries(&dupes, 8);
        assert_eq!(plan.requested_shards, 8);
        assert!(plan.collapsed(), "3 distinct keys cannot split 8 ways: {plan:?}");
        assert!(plan.effective_shards() < 8);
        assert!(
            plan.boundaries.windows(2).all(|w| w[0] < w[1]),
            "deduped boundaries stay strictly increasing: {:?}",
            plan.boundaries
        );
        // The index built from such a plan reports the same effective
        // count (strictly increasing keys here, but too few of them).
        let tiny = pairs(3, 10);
        let plan = sample_cdf_boundaries(&tiny, 8);
        assert!(plan.collapsed());
        let index = ShardedAlex::bulk_load(&tiny, 8, AlexConfig::ga_armi());
        assert_eq!(index.num_shards(), plan.effective_shards());
        // Abundant distinct keys: no collapse.
        let plan = sample_cdf_boundaries(&pairs(10_000, 2), 8);
        assert!(!plan.collapsed());
        assert_eq!(plan.effective_shards(), 8);
    }

    #[test]
    #[should_panic(expected = "shard boundaries must be strictly increasing")]
    fn nonmonotone_boundaries_panic_in_every_profile() {
        // A release-mode assert, not a debug_assert: out-of-order
        // boundaries silently corrupt `route_key`'s binary search, so
        // this must panic under `--release` too (the CI stress job
        // runs tests in release mode).
        let _ = ShardedAlex::<u64, u64>::bulk_load_blocks(
            vec![vec![(1, 1)]],
            vec![50, 40],
            AlexConfig::ga_armi(),
        );
    }

    #[test]
    fn empty_blocks_with_boundaries_keep_the_shard_contract() {
        // Corner 1: no data at all — still boundaries.len() + 1 shards.
        for path in BOTH_PATHS {
            let index: ShardedAlex<u64, u64> = ShardedAlex::bulk_load_blocks_in(
                path,
                core::iter::empty::<Vec<(u64, u64)>>(),
                vec![100, 200, 300],
                AlexConfig::ga_armi(),
            );
            assert_eq!(index.num_shards(), 4, "boundaries.len() + 1 even with no blocks");
            assert_eq!(index.shard_lens(), vec![0, 0, 0, 0]);
            // Routing still works: inserts land in the right shards.
            for k in [50u64, 150, 250, 350] {
                assert!(index.insert(k, k).is_ok());
            }
            assert_eq!(index.shard_lens(), vec![1, 1, 1, 1]);
        }
    }

    #[test]
    fn one_sided_blocks_with_boundaries_keep_the_shard_contract() {
        // Corner 2: all keys below the first boundary — the loop that
        // flushes shards on boundary crossings never fires, so the
        // tail flush must still produce every shard.
        let low: ShardedAlex<u64, u64> = ShardedAlex::bulk_load_blocks(
            vec![vec![(1, 1), (2, 2), (3, 3)]],
            vec![100, 200],
            AlexConfig::ga_armi(),
        );
        assert_eq!(low.num_shards(), 3);
        assert_eq!(low.shard_lens(), vec![3, 0, 0]);
        assert_eq!(low.get(&2), Some(2));

        // And all keys above the last boundary: every leading shard is
        // flushed empty before the data lands in the tail shard.
        let high: ShardedAlex<u64, u64> = ShardedAlex::bulk_load_blocks(
            vec![vec![(500, 5), (600, 6)]],
            vec![100, 200],
            AlexConfig::ga_armi(),
        );
        assert_eq!(high.num_shards(), 3);
        assert_eq!(high.shard_lens(), vec![0, 0, 2]);
        assert_eq!(high.get(&600), Some(6));

        // And the no-boundaries corner: one shard, all data.
        let single: ShardedAlex<u64, u64> = ShardedAlex::bulk_load_blocks(
            vec![vec![(1, 1), (500, 5)]],
            Vec::new(),
            AlexConfig::ga_armi(),
        );
        assert_eq!(single.num_shards(), 1);
        assert_eq!(single.len(), 2);
    }

    #[cfg(feature = "read-stats")]
    #[test]
    fn rebalance_plan_narrows_the_hot_shard() {
        let index = ShardedAlex::bulk_load(&pairs(40_000, 1), 4, AlexConfig::ga_armi());
        assert!(index.rebalance_plan().is_none(), "no traffic, no plan");
        // Hammer the first shard's range: boundary 0 should move left
        // (the hot shard shrinks) once the plan equalizes lookup mass.
        let hot_end = index.boundaries()[0];
        for k in 0..8000u64 {
            let _ = index.get(&(k % hot_end));
        }
        for k in 0..100u64 {
            let _ = index.get(&(hot_end + k)); // a trickle elsewhere
        }
        let stats = index.shard_read_stats();
        assert!(stats[0].lookups >= 8000, "hot shard saw the traffic: {stats:?}");
        let plan = index.rebalance_plan().expect("skewed traffic must produce a plan");
        assert_eq!(plan.boundaries.len(), index.boundaries().len());
        assert!(
            plan.boundaries[0] < index.boundaries()[0],
            "hot shard must shrink: plan {:?} vs current {:?}",
            plan.boundaries,
            index.boundaries()
        );
        assert_eq!(plan.shard_lookups, stats.iter().map(|s| s.lookups).collect::<Vec<_>>());
    }

    #[cfg(feature = "read-stats")]
    #[test]
    fn apply_rebalance_preserves_every_pair() {
        for path in BOTH_PATHS {
            let data = pairs(20_000, 3);
            let mut index = ShardedAlex::bulk_load_in(path, &data, 4, AlexConfig::ga_armi());
            let hot_end = index.boundaries()[0];
            for k in 0..5000u64 {
                let _ = index.get(&((k * 3) % hot_end));
            }
            let plan = index.rebalance_plan().expect("skew produces a plan");
            let report = index.apply_rebalance(&plan);
            assert!(report.moved_keys > 0, "boundaries moved, so keys moved");
            assert!(report.bands > 0);
            assert_eq!(index.boundaries(), &plan.boundaries[..]);
            assert_eq!(index.len(), data.len(), "rebalance loses nothing");
            // Pair-for-pair: every key still answers with its payload,
            // through the *new* routing.
            for (k, v) in &data {
                assert_eq!(index.get(k), Some(*v), "key {k}");
            }
            // Shard lengths match the new boundaries exactly.
            let lens = index.shard_lens();
            let mut expect = vec![0usize; index.num_shards()];
            for (k, _) in &data {
                expect[route_key(index.boundaries(), k)] += 1;
            }
            assert_eq!(lens, expect, "no stragglers in old shards");
        }
    }

    #[test]
    fn epoch_shards_aggregate_write_amortization() {
        let index = ShardedAlex::bulk_load(&pairs(8000, 2), 4, AlexConfig::ga_armi());
        // Point inserts across all shards: absorbed by delta buffers.
        for k in 0..2000u64 {
            assert!(index.insert(2 * k + 1, k).is_ok());
        }
        let stats = index.write_stats();
        assert_eq!(
            stats.delta_hits + stats.leaf_clones,
            2000,
            "every shard write accounted: {stats:?}"
        );
        assert!(stats.delta_hits > stats.flushes, "{stats:?}");
        // A spanning sorted batch: clones bounded by leaf runs across
        // shards, not by key count.
        // Odd keys above the point-phase band (no duplicates).
        let batch: Vec<(u64, u64)> = (0..8000u64).map(|k| (4001 + 8 * k, k)).collect();
        let before = index.write_stats().leaf_clones;
        assert_eq!(index.bulk_insert(&batch), Ok(8000));
        let clones = index.write_stats().leaf_clones - before;
        assert!(
            clones < 8000 / 4,
            "run-level CoW must amortize across shards: {clones} clones for 8000 keys"
        );
    }
}
