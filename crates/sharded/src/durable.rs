//! One log per shard: [`DurableShardedAlex`] (feature `durability`).
//!
//! Each shard is a full [`DurableAlex`] in its own subdirectory
//! (`shard-0000`, `shard-0001`, …) with its own WAL, snapshots, and
//! manifest — so commits on different shards never contend, crash
//! recovery is per-shard (a torn tail in one shard's log cannot touch
//! another's), and snapshots can be staggered. The only shared state
//! is the boundary vector, persisted once at `create` into a
//! CRC-guarded `SHARDS` file: boundaries are immutable for the life
//! of the store, exactly as in the in-memory [`ShardedAlex`], so the
//! file is written once and only ever read back. It is written
//! *after* every shard directory exists — the tmp+rename of `SHARDS`
//! is create's commit point, so a crash mid-create yields a
//! directory [`DurableShardedAlex::open`] refuses rather than one it
//! would silently treat as partially empty.
//!
//! Cross-shard consistency matches the in-memory type's contract:
//! per-key operations are atomic and durable per their shard's group
//! commit; there are no cross-shard transactions. A crash may
//! therefore recover different shards to different LSN frontiers —
//! each one an exact prefix of its own operation sequence.
//!
//! [`ShardedAlex`]: crate::ShardedAlex

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use alex_core::AlexConfig;
use alex_wal::record::Lsn;
use alex_wal::{crc32, DurableAlex, DurableKey, RecoveryReport, WalCodec, WalOptions};

use crate::{route_key, sample_cdf_boundaries, split_sorted_runs};

const SHARDS_MAGIC: &[u8; 8] = b"ALEXSHRD";

/// A range-partitioned set of [`DurableAlex`] shards, one WAL per
/// shard. See the module docs for the layout and consistency
/// contract.
#[derive(Debug)]
pub struct DurableShardedAlex<K, V> {
    shards: Vec<DurableAlex<K, V>>,
    boundaries: Vec<K>,
}

fn shard_dir(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard-{i:04}"))
}

fn write_boundaries<K: WalCodec>(dir: &Path, boundaries: &[K]) -> io::Result<()> {
    let mut body = Vec::with_capacity(16 + boundaries.len() * 8);
    body.extend_from_slice(SHARDS_MAGIC);
    body.extend_from_slice(&(boundaries.len() as u32).to_le_bytes());
    for b in boundaries {
        b.encode_into(&mut body);
    }
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    let tmp = dir.join("SHARDS.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&body)?;
        file.sync_data()?;
    }
    fs::rename(tmp, dir.join("SHARDS"))?;
    // Make the rename durable where the platform allows opening a
    // directory (best-effort elsewhere) — it is create's commit point.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn read_boundaries<K: WalCodec>(dir: &Path) -> io::Result<Vec<K>> {
    let bytes = fs::read(dir.join("SHARDS"))?;
    let corrupt = || io::Error::new(io::ErrorKind::InvalidData, "corrupt SHARDS file");
    if bytes.len() < 16 || &bytes[..8] != SHARDS_MAGIC {
        return Err(corrupt());
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != crc {
        return Err(corrupt());
    }
    let count = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes")) as usize;
    let mut cursor = &body[12..];
    let mut boundaries = Vec::with_capacity(count);
    for _ in 0..count {
        boundaries.push(K::decode_from(&mut cursor).ok_or_else(corrupt)?);
    }
    if !cursor.is_empty() {
        return Err(corrupt());
    }
    Ok(boundaries)
}

impl<K, V> DurableShardedAlex<K, V>
where
    K: DurableKey,
    V: Clone + Default + WalCodec,
{
    /// Initialize a new durable sharded index in `dir` from sorted,
    /// strictly-increasing pairs: boundaries are sampled from the
    /// key CDF (like [`ShardedAlex::bulk_load`]), persisted to
    /// `SHARDS`, and each shard's slice becomes a [`DurableAlex`]
    /// (whose `create` snapshots the load immediately).
    ///
    /// [`ShardedAlex::bulk_load`]: crate::ShardedAlex::bulk_load
    ///
    /// # Panics
    /// Panics if `num_shards == 0`, or (debug builds) if `pairs` is
    /// not strictly increasing by key.
    pub fn create(
        dir: impl Into<PathBuf>,
        pairs: &[(K, V)],
        num_shards: usize,
        config: AlexConfig,
        opts: WalOptions,
    ) -> io::Result<Self> {
        assert!(num_shards > 0, "need at least one shard");
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "create input must be strictly increasing"
        );
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        if dir.join("SHARDS").exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "directory already holds a durable sharded index",
            ));
        }
        let boundaries = sample_cdf_boundaries(pairs, num_shards).into_boundaries();
        let mut shards = Vec::with_capacity(boundaries.len() + 1);
        let mut rest = pairs;
        for (i, bound) in boundaries.iter().enumerate() {
            let cut = rest.partition_point(|(k, _)| k < bound);
            let (run, tail) = rest.split_at(cut);
            shards.push(DurableAlex::create(shard_dir(&dir, i), run, config, opts)?);
            rest = tail;
        }
        shards.push(DurableAlex::create(
            shard_dir(&dir, boundaries.len()),
            rest,
            config,
            opts,
        )?);
        // SHARDS is the commit point, so it goes last: a crash
        // mid-create leaves a directory `open` refuses (NotFound)
        // instead of one it would silently recover with the missing
        // shards empty.
        write_boundaries(&dir, &boundaries)?;
        Ok(Self { shards, boundaries })
    }

    /// Recover every shard in `dir`. Returns one [`RecoveryReport`]
    /// per shard, in shard order.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: AlexConfig,
        opts: WalOptions,
    ) -> io::Result<(Self, Vec<RecoveryReport>)> {
        let dir = dir.into();
        let boundaries: Vec<K> = read_boundaries(&dir)?;
        let mut shards = Vec::with_capacity(boundaries.len() + 1);
        let mut reports = Vec::with_capacity(boundaries.len() + 1);
        for i in 0..=boundaries.len() {
            let (shard, report) = DurableAlex::open(shard_dir(&dir, i), config, opts)?;
            shards.push(shard);
            reports.push(report);
        }
        Ok((Self { shards, boundaries }, reports))
    }

    /// Which shard owns `key` (same arithmetic as the in-memory
    /// type: shard `i + 1` owns keys `>= boundaries[i]`).
    #[inline]
    fn shard_for(&self, key: &K) -> usize {
        route_key(&self.boundaries, key)
    }

    /// Point lookup (lock-free within the owning shard).
    pub fn get(&self, key: &K) -> Option<V> {
        self.shards[self.shard_for(key)].get(key)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.shards[self.shard_for(key)].contains(key)
    }

    /// Logged insert into the owning shard. `Ok(false)` = duplicate.
    pub fn insert(&self, key: K, value: V) -> io::Result<bool> {
        self.shards[self.shard_for(&key)].insert(key, value)
    }

    /// Logged insert-or-replace in the owning shard.
    pub fn upsert(&self, key: K, value: V) -> io::Result<Option<V>> {
        self.shards[self.shard_for(&key)].upsert(key, value)
    }

    /// Logged payload replacement in the owning shard.
    pub fn update(&self, key: &K, value: V) -> io::Result<Option<V>> {
        self.shards[self.shard_for(key)].update(key, value)
    }

    /// Logged removal from the owning shard.
    pub fn remove(&self, key: &K) -> io::Result<Option<V>> {
        self.shards[self.shard_for(key)].remove(key)
    }

    /// Sorted-batch lookup: keys split into per-shard runs, each served
    /// by the owning shard's lock-free `get_many` (mirrors
    /// [`ShardedAlex::get_many`]).
    ///
    /// [`ShardedAlex::get_many`]: crate::ShardedAlex::get_many
    ///
    /// # Panics
    /// Panics (debug builds) if `keys` is not sorted non-decreasing.
    pub fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        debug_assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "get_many input must be sorted"
        );
        let mut out = Vec::with_capacity(keys.len());
        split_sorted_runs(&self.boundaries, keys, |k| k, |shard, run| {
            out.extend(self.shards[shard].index().get_many(run));
        });
        out
    }

    /// Sorted-batch insert: pairs split into per-shard runs, each
    /// logged and applied by the owning shard's [`DurableAlex::bulk_insert`]
    /// (one `PutRun`-batched group commit per shard touched). Returns
    /// the number of pairs that landed (duplicates skipped).
    ///
    /// # Panics
    /// Panics (debug builds) if `pairs` is not sorted by key.
    pub fn bulk_insert(&self, pairs: &[(K, V)]) -> io::Result<usize> {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_insert input must be sorted by key"
        );
        // Reject a sentinel-bearing batch before splitting: the
        // sentinel is the max key so it routes to the *last* shard,
        // and per-shard rejection alone would leave earlier shards'
        // runs already logged and applied.
        if pairs.last().is_some_and(|(k, _)| k.is_sentinel()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                alex_core::InsertError::UnsupportedKey,
            ));
        }
        let mut inserted = 0usize;
        let mut err: Option<io::Error> = None;
        split_sorted_runs(&self.boundaries, pairs, |(k, _)| k, |shard, run| {
            if err.is_none() {
                match self.shards[shard].bulk_insert(run) {
                    Ok(n) => inserted += n,
                    Err(e) => err = Some(e),
                }
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(inserted),
        }
    }

    /// Visit up to `limit` entries with key `>= key` in order, crossing
    /// shard boundaries one shard at a time (same relaxation as
    /// [`ShardedAlex::scan_from`]). Returns the number visited.
    ///
    /// [`ShardedAlex::scan_from`]: crate::ShardedAlex::scan_from
    pub fn scan_from(&self, key: &K, limit: usize, mut f: impl FnMut(&K, &V)) -> usize {
        let mut visited = 0usize;
        for shard in self.shard_for(key)..self.shards.len() {
            if visited >= limit {
                break;
            }
            visited += self.shards[shard].scan_from(key, limit - visited, &mut f);
        }
        visited
    }

    /// Total entries across shards. Like the in-memory type, summed
    /// per shard without a global lock.
    pub fn len(&self) -> usize {
        self.shards.iter().map(DurableAlex::len).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Commit every shard's buffered records now.
    pub fn flush_all(&self) -> io::Result<Vec<Lsn>> {
        self.shards.iter().map(DurableAlex::flush_wal).collect()
    }

    /// Snapshot every shard (sequentially; each shard's writers keep
    /// running per [`DurableAlex::snapshot`]). Returns each shard's
    /// snapshot LSN.
    pub fn snapshot_all(&self) -> io::Result<Vec<Lsn>> {
        self.shards.iter().map(DurableAlex::snapshot).collect()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard boundaries (shard `i + 1` owns keys `>= boundaries[i]`).
    pub fn boundaries(&self) -> &[K] {
        &self.boundaries
    }

    /// Direct access to one shard, e.g. for per-shard stats or
    /// staggered snapshot scheduling.
    pub fn shard(&self, i: usize) -> &DurableAlex<K, V> {
        &self.shards[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alex_wal::tempdir::TempDir;
    use alex_wal::SyncPolicy;

    fn no_sync() -> WalOptions {
        WalOptions { sync: SyncPolicy::Never, ..WalOptions::default() }
    }

    fn config() -> AlexConfig {
        AlexConfig::ga_armi().with_max_node_keys(256).with_splitting()
    }

    #[test]
    fn sharded_create_write_crash_open_round_trips() {
        let dir = TempDir::new("sharded-roundtrip");
        let pairs: Vec<(u64, u64)> = (0..4000).map(|k| (k * 2, k)).collect();
        let index = DurableShardedAlex::create(dir.path(), &pairs, 4, config(), no_sync()).unwrap();
        assert_eq!(index.num_shards(), 4);
        // Odd keys spread over the whole keyspace, so every shard
        // sees writes.
        for k in 0..300u64 {
            index.insert(k * 26 + 1, k).unwrap();
        }
        index.remove(&0).unwrap();
        assert_eq!(index.update(&2, 999).unwrap(), Some(1));
        drop(index); // crash
        let (back, reports) =
            DurableShardedAlex::<u64, u64>::open(dir.path(), config(), no_sync()).unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(back.len(), 4000 + 300 - 1);
        assert_eq!(back.get(&0), None);
        assert_eq!(back.get(&2), Some(999));
        assert_eq!(back.get(&2000), Some(1000), "bulk-loaded key via the initial snapshot");
        for k in (0..300u64).step_by(17) {
            assert_eq!(back.get(&(k * 26 + 1)), Some(k), "inserted key {k}");
        }
        // Writes routed to distinct shards leave distinct logs:
        // recovery work is spread, not centralized.
        assert!(
            reports.iter().filter(|r| r.replayed > 0).count() > 1,
            "writes spread across shards must replay per shard: {reports:?}"
        );
    }

    #[test]
    fn per_shard_snapshots_bound_per_shard_replay() {
        let dir = TempDir::new("sharded-snap");
        let pairs: Vec<(u64, u64)> = (0..2000).map(|k| (k * 2, k)).collect();
        let index = DurableShardedAlex::create(dir.path(), &pairs, 4, config(), no_sync()).unwrap();
        for k in 0..200u64 {
            index.insert(k * 2 + 1, k).unwrap(); // lands in low shards
        }
        index.snapshot_all().unwrap();
        // Tail after the snapshots: a handful of high-key writes.
        for k in 3000..3020u64 {
            index.insert(k * 2 + 1, k).unwrap();
        }
        drop(index);
        let (back, reports) =
            DurableShardedAlex::<u64, u64>::open(dir.path(), config(), no_sync()).unwrap();
        assert_eq!(back.len(), 2000 + 200 + 20);
        let replayed: usize = reports.iter().map(|r| r.replayed).sum();
        assert_eq!(replayed, 20, "snapshots must absorb everything before them");
        assert!(reports.iter().all(|r| r.snapshot_lsn > 0));
    }

    #[test]
    fn batch_ops_span_shards_and_survive_recovery() {
        let dir = TempDir::new("sharded-batch");
        let pairs: Vec<(u64, u64)> = (0..4000).map(|k| (k * 4, k)).collect();
        let index = DurableShardedAlex::create(dir.path(), &pairs, 4, config(), no_sync()).unwrap();
        // A spanning sorted batch; every shard sees part of it.
        let fresh: Vec<(u64, u64)> = (0..2000u64).map(|k| (k * 8 + 1, k)).collect();
        assert_eq!(index.bulk_insert(&fresh).unwrap(), 2000);
        assert_eq!(index.bulk_insert(&fresh).unwrap(), 0, "second pass is all duplicates");
        let queries: Vec<u64> = (0..2000u64).map(|k| k * 8 + 1).collect();
        assert!(index.get_many(&queries).iter().all(Option::is_some));
        let mut seen = Vec::new();
        let visited = index.scan_from(&0, 100, |k, _| seen.push(*k));
        assert_eq!(visited, 100);
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "scan stays sorted across shards");
        drop(index); // crash
        let (back, _) = DurableShardedAlex::<u64, u64>::open(dir.path(), config(), no_sync()).unwrap();
        assert_eq!(back.len(), 4000 + 2000);
        assert!(back.get_many(&queries).iter().all(Option::is_some), "batch survives recovery");
    }

    #[test]
    fn boundaries_survive_reopen_and_corruption_is_rejected() {
        let dir = TempDir::new("sharded-bounds");
        let pairs: Vec<(u64, u64)> = (0..1000).map(|k| (k * 3, k)).collect();
        let index = DurableShardedAlex::create(dir.path(), &pairs, 3, config(), no_sync()).unwrap();
        let bounds = index.boundaries().to_vec();
        drop(index);
        let (back, _) = DurableShardedAlex::<u64, u64>::open(dir.path(), config(), no_sync()).unwrap();
        assert_eq!(back.boundaries(), &bounds[..]);
        drop(back);
        let shards_file = dir.path().join("SHARDS");
        let mut bytes = std::fs::read(&shards_file).unwrap();
        bytes[10] ^= 0x04;
        std::fs::write(&shards_file, &bytes).unwrap();
        let err = DurableShardedAlex::<u64, u64>::open(dir.path(), config(), no_sync()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn half_created_store_fails_open_instead_of_losing_shards() {
        // A crash mid-create leaves shard directories but no SHARDS
        // file (it is written last, as the commit point). Open must
        // refuse with NotFound — not read stale boundaries and
        // silently recover missing shards as empty.
        let dir = TempDir::new("sharded-half-created");
        let pairs: Vec<(u64, u64)> = (0..500).map(|k| (k * 2, k)).collect();
        let index = DurableShardedAlex::create(dir.path(), &pairs, 3, config(), no_sync()).unwrap();
        drop(index);
        std::fs::remove_file(dir.path().join("SHARDS")).unwrap();
        let err = DurableShardedAlex::<u64, u64>::open(dir.path(), config(), no_sync()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn create_refuses_an_initialized_directory() {
        let dir = TempDir::new("sharded-dirty");
        let pairs: Vec<(u64, u64)> = (0..100).map(|k| (k, k)).collect();
        DurableShardedAlex::create(dir.path(), &pairs, 2, config(), no_sync()).unwrap();
        let err =
            DurableShardedAlex::create(dir.path(), &pairs, 2, config(), no_sync()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
    }
}
