//! Open-loop arrival schedules.
//!
//! A closed-loop driver waits for each response before issuing the
//! next request, so when the server stalls the offered load politely
//! stalls too — and the measured latency hides the very queueing the
//! stall caused (coordinated omission). An **open-loop** driver fixes
//! the arrival times in advance and measures each operation from its
//! *scheduled* time, so server hiccups show up as queueing delay in
//! the tail instead of vanishing.
//!
//! The canonical open-loop arrival process is Poisson: independent
//! exponentially distributed inter-arrival gaps, `gap = -ln(1-u)/λ`
//! by inversion sampling. [`poisson_schedule`] materializes the
//! cumulative offsets for a whole run up front so the dispatch loop
//! does no RNG work on the timed path.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// An endless stream of exponentially distributed inter-arrival gaps
/// with mean `1 / rate_per_sec`. Deterministic per seed.
pub struct PoissonArrivals {
    rng: StdRng,
    rate_per_sec: f64,
}

impl PoissonArrivals {
    /// `rate_per_sec` must be finite and positive.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive, got {rate_per_sec}"
        );
        PoissonArrivals { rng: StdRng::seed_from_u64(seed), rate_per_sec }
    }
}

impl Iterator for PoissonArrivals {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        // u in [0, 1) makes 1-u in (0, 1], so ln is finite and the
        // gap non-negative.
        let u: f64 = self.rng.random();
        let gap_secs = -(1.0 - u).ln() / self.rate_per_sec;
        Some(Duration::from_secs_f64(gap_secs))
    }
}

/// Cumulative arrival offsets (from an epoch the caller picks) for
/// `ops` operations at `rate_per_sec`, monotone non-decreasing.
pub fn poisson_schedule(rate_per_sec: f64, ops: usize, seed: u64) -> Vec<Duration> {
    let mut at = Duration::ZERO;
    PoissonArrivals::new(rate_per_sec, seed)
        .take(ops)
        .map(|gap| {
            at += gap;
            at
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_average_the_inverse_rate() {
        let rate = 10_000.0; // 100 µs mean gap
        let n = 20_000;
        let total: Duration = PoissonArrivals::new(rate, 7).take(n).sum();
        let mean = total.as_secs_f64() / n as f64;
        let want = 1.0 / rate;
        assert!(
            (mean - want).abs() / want < 0.05,
            "mean gap {mean:e} not within 5% of {want:e}"
        );
    }

    #[test]
    fn schedules_are_monotone_and_deterministic() {
        let a = poisson_schedule(500.0, 1000, 42);
        let b = poisson_schedule(500.0, 1000, 42);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets must not regress");
        assert_eq!(a.len(), 1000);
        let c = poisson_schedule(500.0, 1000, 43);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn gaps_are_spread_not_constant() {
        // An exponential distribution has cv = 1; even a crude check
        // distinguishes it from uniform-interval pacing.
        let gaps: Vec<f64> =
            PoissonArrivals::new(1000.0, 3).take(5000).map(|d| d.as_secs_f64()).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "coefficient of variation {cv} should be ~1");
    }
}
