//! YCSB-style workload drivers reproducing §5.1.2 of the ALEX paper.
//!
//! Four workloads, "roughly corresponding to Workloads C, B, A, and E
//! from the YCSB benchmark":
//!
//! | Workload | Mix | Interleave |
//! |---|---|---|
//! | read-only | 100% reads | — |
//! | read-heavy | 95% reads / 5% inserts | 19 reads, 1 insert |
//! | write-heavy | 50% reads / 50% inserts | 1 read, 1 insert |
//! | range scan | 95% scans / 5% inserts | 19 scans, 1 insert |
//!
//! Lookup keys are drawn from the *existing* keys with a Zipfian
//! distribution (so lookups always hit); scan lengths are uniform in
//! `1..=100`. The driver works against any [`OrderedIndex`] — adapters
//! for ALEX, the B+Tree baseline, and the Learned Index baseline are in
//! [`adapters`].
//!
//! # Examples
//! ```
//! use alex_btree::BPlusTree;
//! use alex_workloads::adapters::BTreeAdapter;
//! use alex_workloads::{run_workload, WorkloadKind, WorkloadSpec};
//!
//! let keys: Vec<u64> = (0..1000).collect();
//! let data: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k * 2)).collect();
//! let mut index = BTreeAdapter(BPlusTree::bulk_load(&data, 64, 64, 0.7));
//!
//! let inserts: Vec<u64> = (1000..1100).collect();
//! let spec = WorkloadSpec::new(WorkloadKind::ReadHeavy, 500);
//! let report = run_workload(&mut index, &keys, &inserts, &spec, |&k| k * 2);
//!
//! assert_eq!(report.ops, 500);
//! // Lookups Zipf-select from keys known to exist, so they always hit.
//! assert_eq!(report.hits, report.reads);
//! ```

pub mod adapters;
pub mod concurrent;
mod driver;

pub use concurrent::{run_workload_mt, ConcurrentIndex};
pub use driver::{run_workload, WorkloadKind, WorkloadReport, WorkloadSpec};

/// The index interface the workload driver exercises — the operations
/// §5.1.2 measures, plus the §5.1 size accounting.
pub trait OrderedIndex<K, V> {
    /// Point lookup; `true` when the key was found.
    fn contains(&self, key: &K) -> bool;

    /// Insert; `false` on duplicate.
    fn insert(&mut self, key: K, value: V) -> bool;

    /// Scan up to `limit` entries with key `>= key`; returns the number
    /// of entries visited.
    fn scan_from(&self, key: &K, limit: usize) -> usize;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The paper's *index size* (models/inner nodes + pointers +
    /// metadata).
    fn index_size_bytes(&self) -> usize;

    /// The paper's *data size* (leaf/data storage including gaps).
    fn data_size_bytes(&self) -> usize;

    /// Display name for reports.
    fn label(&self) -> String;
}
