//! YCSB-style workload drivers reproducing §5.1.2 of the ALEX paper.
//!
//! Four workloads, "roughly corresponding to Workloads C, B, A, and E
//! from the YCSB benchmark", plus a remove-heavy mix exercising the
//! delete path the paper calls "strictly easier than inserts" (§3.2):
//!
//! | Workload | Mix | Interleave |
//! |---|---|---|
//! | read-only | 100% reads | — |
//! | read-heavy | 95% reads / 5% inserts | 19 reads, 1 insert |
//! | write-heavy | 50% reads / 50% inserts | 1 read, 1 insert |
//! | range scan | 95% scans / 5% inserts | 19 scans, 1 insert |
//! | remove-heavy | 50% reads / 25% inserts / 25% removes | 2 reads, 1 insert, 1 remove |
//!
//! Lookup keys are drawn from the *existing* keys with a Zipfian
//! distribution (so lookups always hit); scan lengths are uniform in
//! `1..=100`; removes target keys previously inserted by the same run,
//! so they always evict. The drivers work against the [`alex_api`]
//! trait family — [`run_workload`] takes any [`IndexWrite`],
//! [`run_workload_mt`] any [`ConcurrentIndex`] — and both share one mix
//! loop, so a backend's numbers are comparable across drivers by
//! construction. This crate defines **no index traits of its own**; it
//! consumes `alex-api` like every backend does.
//!
//! # Examples
//! ```
//! use alex_api::LockedBTreeMap;
//! use alex_workloads::{run_workload, WorkloadKind, WorkloadSpec};
//!
//! let keys: Vec<u64> = (0..1000).collect();
//! let mut index = LockedBTreeMap::from_pairs(
//!     &keys.iter().map(|&k| (k, k * 2)).collect::<Vec<_>>(),
//! );
//!
//! let inserts: Vec<u64> = (1000..1100).collect();
//! let spec = WorkloadSpec::new(WorkloadKind::ReadHeavy, 500);
//! let report = run_workload(&mut index, &keys, &inserts, &spec, |&k| k * 2);
//!
//! assert_eq!(report.ops, 500);
//! // Lookups Zipf-select from keys known to exist, so they always hit.
//! assert_eq!(report.hits, report.reads);
//! ```

pub mod arrival;
pub mod concurrent;
mod driver;

// The index contract the drivers consume, re-exported so downstream
// code can keep importing the surface from one place.
pub use alex_api::{
    BatchOps, ConcurrentIndex, Entry, IndexRead, IndexWrite, InsertError, LockedBTreeMap,
    RangeScan,
};
pub use arrival::{poisson_schedule, PoissonArrivals};
pub use concurrent::run_workload_mt;
pub use driver::{run_workload, WorkloadKind, WorkloadReport, WorkloadSpec};
