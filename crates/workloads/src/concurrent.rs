//! Multi-threaded workload execution.
//!
//! [`run_workload_mt`] serves the same mixes as [`crate::run_workload`]
//! — including the remove-heavy mix — but from `N` worker threads
//! inside a `std::thread::scope`, against any [`ConcurrentIndex`] — an
//! index whose operations (including inserts and removes) take `&self`
//! and are safe under concurrent callers. The flagship backend is
//! `alex_sharded::ShardedAlex` on its default **epoch read path**
//! (reads never take a lock; splits retire nodes through
//! `alex_core::epoch`), with the per-shard-`RwLock` path and the
//! reference [`LockedBTreeMap`](alex_api::LockedBTreeMap) as the
//! blocking baselines — `fig5_threads --read-path both` sweeps the
//! comparison.
//!
//! The op budget is split evenly across threads; the insert-key pool is
//! partitioned so threads never race on the same key. Each thread draws
//! lookup keys Zipf-style from its own view of the key pool (the initial
//! keys plus the keys *it* inserted), so every lookup targets a key
//! guaranteed to be present — the same always-hit property the
//! single-threaded driver has. Removes likewise evict only keys the
//! same thread inserted, so no two threads ever contend on one key's
//! lifecycle and every remove must succeed.

use std::time::Instant;

use alex_api::ConcurrentIndex;

use crate::driver::{drive_mix, IndexOp, IndexOpResult};
use crate::{WorkloadReport, WorkloadSpec};

/// Per-thread slice of the run: the shared mix loop of
/// [`crate::run_workload`], executed through `&self` operations.
fn run_worker<K, V, I>(
    index: &I,
    existing_keys: &[K],
    insert_keys: &[K],
    spec: &WorkloadSpec,
    ops_budget: usize,
    thread_seed: u64,
    make_value: &(impl Fn(&K) -> V + Sync),
) -> WorkloadReport
where
    K: Copy,
    I: ConcurrentIndex<K, V> + ?Sized,
{
    drive_mix(
        existing_keys,
        insert_keys,
        spec,
        ops_budget,
        thread_seed,
        index.label(),
        |op| match op {
            IndexOp::Contains(k) => IndexOpResult::Hit(index.contains(k)),
            IndexOp::Scan(k, len) => IndexOpResult::Scanned(index.scan_from(k, len, &mut |k, v| {
                core::hint::black_box((k, v));
            })),
            IndexOp::Insert(k) => {
                IndexOpResult::Inserted(index.insert(k, make_value(&k)).is_ok())
            }
            IndexOp::Remove(k) => IndexOpResult::Removed(index.remove(k).is_some()),
        },
    )
}

/// Run `spec` against `index` from `threads` worker threads.
///
/// `existing_keys` must list the keys already loaded (in any order);
/// `insert_keys` is split into `threads` disjoint chunks. The combined
/// report sums per-thread op counts; `elapsed` is the wall-clock time
/// of the whole scope (so `throughput()` reflects aggregate ops/sec).
///
/// # Panics
/// Panics if `threads == 0` or `existing_keys` is empty.
pub fn run_workload_mt<K, V, I>(
    index: &I,
    existing_keys: &[K],
    insert_keys: &[K],
    spec: &WorkloadSpec,
    threads: usize,
    make_value: impl Fn(&K) -> V + Sync,
) -> WorkloadReport
where
    K: Copy + Sync,
    V: Send,
    I: ConcurrentIndex<K, V> + ?Sized,
{
    assert!(threads > 0, "need at least one worker thread");
    assert!(!existing_keys.is_empty(), "need at least one existing key");
    let ops_per_thread = spec.ops.div_ceil(threads);
    let chunk = insert_keys.len().div_ceil(threads).max(1);
    let make_value = &make_value;

    let start = Instant::now();
    let mut reports: Vec<WorkloadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let inserts = insert_keys.chunks(chunk).nth(t).unwrap_or(&[]);
                scope.spawn(move || {
                    run_worker(
                        index,
                        existing_keys,
                        inserts,
                        spec,
                        ops_per_thread,
                        spec.seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(t as u64 + 1)),
                        make_value,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();

    let mut total = reports.pop().expect("threads > 0");
    for r in reports {
        total.ops += r.ops;
        total.reads += r.reads;
        total.inserts += r.inserts;
        total.removes += r.removes;
        total.scanned += r.scanned;
        total.hits += r.hits;
        total.evictions += r.evictions;
    }
    total.elapsed = elapsed;
    total.index_size_bytes = index.index_size_bytes();
    total.data_size_bytes = index.data_size_bytes();
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadKind;
    use alex_api::{IndexRead, LockedBTreeMap};

    fn setup() -> (LockedBTreeMap<u64, u64>, Vec<u64>, Vec<u64>) {
        let existing: Vec<u64> = (0..2000u64).map(|k| k * 2).collect();
        let inserts: Vec<u64> = (0..2000u64).map(|k| k * 2 + 1).collect();
        let pairs: Vec<(u64, u64)> = existing.iter().map(|&k| (k, k)).collect();
        (LockedBTreeMap::from_pairs(&pairs), existing, inserts)
    }

    #[test]
    fn read_only_always_hits_across_threads() {
        let (index, existing, _) = setup();
        let spec = WorkloadSpec::new(WorkloadKind::ReadOnly, 4000);
        let report = run_workload_mt(&index, &existing, &[], &spec, 4, |&k| k);
        assert_eq!(report.reads, report.ops);
        assert_eq!(report.hits, report.reads, "Zipf over existing keys must always hit");
        assert!(report.ops >= 4000, "ceil-split budget covers the request");
        assert_eq!(report.inserts, 0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn write_heavy_inserts_are_disjoint_and_land() {
        let (index, existing, inserts) = setup();
        let spec = WorkloadSpec::new(WorkloadKind::WriteHeavy, 2000);
        let report = run_workload_mt(&index, &existing, &inserts, &spec, 4, |&k| k);
        assert_eq!(report.hits, report.reads, "thread-local pools always hit");
        assert!(report.inserts > 0);
        // Disjoint chunks: every attempted insert is fresh, so the map
        // grew by exactly the insert count.
        assert_eq!(index.len(), existing.len() + report.inserts as usize);
    }

    #[test]
    fn range_scans_count_entries() {
        let (index, existing, inserts) = setup();
        let spec = WorkloadSpec::new(WorkloadKind::RangeScan, 1000);
        let report = run_workload_mt(&index, &existing, &inserts, &spec, 2, |&k| k);
        assert!(report.scanned > 0);
        assert!(report.scanned as f64 / report.reads as f64 > 10.0, "mean scan length ~50");
    }

    #[test]
    fn remove_heavy_runs_under_the_mt_driver() {
        let (index, existing, inserts) = setup();
        let spec = WorkloadSpec::new(WorkloadKind::RemoveHeavy, 4000);
        let report = run_workload_mt(&index, &existing, &inserts, &spec, 4, |&k| k);
        assert!(report.removes > 0, "MT driver must execute remove ops");
        assert_eq!(report.evictions, report.removes, "thread-local evictions always hit");
        assert_eq!(report.hits, report.reads, "reads never target evicted keys");
        // Per-thread LIFO eviction drains every insert.
        assert_eq!(index.len(), existing.len());
    }

    #[test]
    fn single_thread_mt_matches_spec_budget() {
        let (index, existing, inserts) = setup();
        let spec = WorkloadSpec::new(WorkloadKind::ReadHeavy, 1000);
        let report = run_workload_mt(&index, &existing, &inserts, &spec, 1, |&k| k);
        assert_eq!(report.ops, 1000);
        assert_eq!(report.inserts, 50, "5% of 1000");
    }
}
