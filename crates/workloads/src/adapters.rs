//! [`OrderedIndex`] adapters for the three competitors of §5.1:
//! ALEX (all four variants), the B+Tree baseline, and the Learned
//! Index baseline.

use alex_btree::BPlusTree;
use alex_core::{AlexIndex, AlexKey};
use alex_learned_index::LearnedIndex;

use crate::OrderedIndex;

/// ALEX behind the workload-driver interface.
pub struct AlexAdapter<K, V>(pub AlexIndex<K, V>);

impl<K: AlexKey, V: Clone + Default> OrderedIndex<K, V> for AlexAdapter<K, V> {
    fn contains(&self, key: &K) -> bool {
        self.0.get(key).is_some()
    }

    fn insert(&mut self, key: K, value: V) -> bool {
        self.0.insert(key, value).is_ok()
    }

    fn scan_from(&self, key: &K, limit: usize) -> usize {
        self.0.scan_from(key, limit, |k, v| {
            core::hint::black_box((k, v));
        })
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn index_size_bytes(&self) -> usize {
        self.0.size_report().index_bytes
    }

    fn data_size_bytes(&self) -> usize {
        self.0.size_report().data_bytes
    }

    fn label(&self) -> String {
        self.0.config().variant_name()
    }
}

/// The B+Tree baseline behind the workload-driver interface.
pub struct BTreeAdapter<K, V>(pub BPlusTree<K, V>);

impl<K: PartialOrd + Clone, V> OrderedIndex<K, V> for BTreeAdapter<K, V> {
    fn contains(&self, key: &K) -> bool {
        self.0.get(key).is_some()
    }

    fn insert(&mut self, key: K, value: V) -> bool {
        self.0.insert(key, value).is_none()
    }

    fn scan_from(&self, key: &K, limit: usize) -> usize {
        let mut n = 0usize;
        for kv in self.0.range_from(key, limit) {
            core::hint::black_box(kv);
            n += 1;
        }
        n
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn index_size_bytes(&self) -> usize {
        self.0.index_size_bytes()
    }

    fn data_size_bytes(&self) -> usize {
        self.0.data_size_bytes()
    }

    fn label(&self) -> String {
        "B+Tree".to_string()
    }
}

/// The static Learned Index baseline behind the workload-driver
/// interface. (The paper excludes it from read-write workloads —
/// naive inserts are orders of magnitude slower — but the adapter
/// supports them for the Figure 8 shift study.)
pub struct LearnedIndexAdapter<K, V>(pub LearnedIndex<K, V>);

impl<K: alex_learned_index::Key, V: Clone> OrderedIndex<K, V> for LearnedIndexAdapter<K, V> {
    fn contains(&self, key: &K) -> bool {
        self.0.get(key).is_some()
    }

    fn insert(&mut self, key: K, value: V) -> bool {
        self.0.insert(key, value)
    }

    fn scan_from(&self, key: &K, limit: usize) -> usize {
        let mut n = 0usize;
        for kv in self.0.range_from(key, limit) {
            core::hint::black_box(kv);
            n += 1;
        }
        n
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn index_size_bytes(&self) -> usize {
        self.0.index_size_bytes()
    }

    fn data_size_bytes(&self) -> usize {
        self.0.data_size_bytes()
    }

    fn label(&self) -> String {
        "Learned Index".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alex_core::AlexConfig;

    #[test]
    fn adapters_agree_on_basics() {
        let data: Vec<(u64, u64)> = (0..1000).map(|k| (k * 2, k)).collect();
        let mut alex = AlexAdapter(AlexIndex::bulk_load(&data, AlexConfig::ga_armi()));
        let mut btree = BTreeAdapter(BPlusTree::bulk_load(&data, 64, 64, 0.7));
        let mut li = LearnedIndexAdapter(LearnedIndex::bulk_load(&data, 16));
        for idx in [
            &mut alex as &mut dyn OrderedIndex<u64, u64>,
            &mut btree,
            &mut li,
        ] {
            assert_eq!(idx.len(), 1000, "{}", idx.label());
            assert!(idx.contains(&500));
            assert!(!idx.contains(&501));
            assert!(idx.insert(501, 0));
            assert!(!idx.insert(501, 0));
            assert!(idx.contains(&501));
            assert_eq!(idx.scan_from(&0, 10), 10);
            assert!(idx.index_size_bytes() > 0);
            assert!(idx.data_size_bytes() > 0);
        }
        assert_eq!(alex.label(), "ALEX-GA-ARMI");
        assert_eq!(btree.label(), "B+Tree");
        assert_eq!(li.label(), "Learned Index");
    }
}
