//! Workload execution: interleaved read/insert/remove loops with
//! Zipfian key selection and throughput measurement.

use std::time::{Duration, Instant};

use alex_api::IndexWrite;
use alex_datasets::ScrambledZipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The four workload mixes of §5.1.2, plus the remove-heavy mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// 100% point reads (YCSB C).
    ReadOnly,
    /// 95% reads / 5% inserts, interleaved 19:1 (YCSB B).
    ReadHeavy,
    /// 50% reads / 50% inserts, interleaved 1:1 (YCSB A).
    WriteHeavy,
    /// 95% scans / 5% inserts, scan length uniform in 1..=100 (YCSB E).
    RangeScan,
    /// 50% reads / 25% inserts / 25% removes, interleaved 2:1:1 —
    /// removes evict keys inserted earlier in the run, so the index
    /// size stays near its initial value while the delete path gets
    /// exercised under both drivers.
    RemoveHeavy,
}

impl WorkloadKind {
    /// The paper's four mixes, in the paper's order.
    pub const ALL: [WorkloadKind; 4] = [
        WorkloadKind::ReadOnly,
        WorkloadKind::ReadHeavy,
        WorkloadKind::WriteHeavy,
        WorkloadKind::RangeScan,
    ];

    /// All five mixes: the paper's four plus the remove-heavy mix.
    pub const EXTENDED: [WorkloadKind; 5] = [
        WorkloadKind::ReadOnly,
        WorkloadKind::ReadHeavy,
        WorkloadKind::WriteHeavy,
        WorkloadKind::RangeScan,
        WorkloadKind::RemoveHeavy,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::ReadOnly => "read-only",
            WorkloadKind::ReadHeavy => "read-heavy",
            WorkloadKind::WriteHeavy => "write-heavy",
            WorkloadKind::RangeScan => "range-scan",
            WorkloadKind::RemoveHeavy => "remove-heavy",
        }
    }

    /// Parse a display name (as accepted by the bench binaries'
    /// `--workload` flag).
    pub fn from_name(name: &str) -> Option<WorkloadKind> {
        WorkloadKind::EXTENDED.into_iter().find(|k| k.name() == name)
    }

    /// Parse a `--workload` flag value into the mixes to run: a single
    /// mix by name, `"all"` for the paper's four, or `"extended"` for
    /// all five.
    ///
    /// # Panics
    /// Panics on an unknown name (flag validation in the bench
    /// binaries).
    pub fn parse_selection(selection: &str) -> Vec<WorkloadKind> {
        match selection {
            "all" => WorkloadKind::ALL.to_vec(),
            "extended" => WorkloadKind::EXTENDED.to_vec(),
            name => vec![WorkloadKind::from_name(name)
                .unwrap_or_else(|| panic!("unknown --workload {name:?}"))],
        }
    }

    /// `(reads, inserts, removes)` per interleave cycle.
    pub(crate) fn cycle(self) -> (usize, usize, usize) {
        match self {
            WorkloadKind::ReadOnly => (1, 0, 0),
            WorkloadKind::ReadHeavy | WorkloadKind::RangeScan => (19, 1, 0),
            WorkloadKind::WriteHeavy => (1, 1, 0),
            WorkloadKind::RemoveHeavy => (2, 1, 1),
        }
    }

    /// Whether reads are range scans.
    pub(crate) fn scans(self) -> bool {
        matches!(self, WorkloadKind::RangeScan)
    }
}

/// Parameters for one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Which mix to run.
    pub kind: WorkloadKind,
    /// Total operations (reads + inserts + removes) to perform. The
    /// run ends early if the insert pool is exhausted.
    pub ops: usize,
    /// Maximum range-scan length (paper: 100).
    pub max_scan_len: usize,
    /// RNG seed for key selection.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A spec with the paper's constants and the given op budget.
    pub fn new(kind: WorkloadKind, ops: usize) -> Self {
        Self {
            kind,
            ops,
            max_scan_len: 100,
            seed: 0xA1EF,
        }
    }
}

/// Results of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Operations completed.
    pub ops: u64,
    /// Point reads (or scans) performed.
    pub reads: u64,
    /// Inserts performed.
    pub inserts: u64,
    /// Removes performed.
    pub removes: u64,
    /// Total entries visited by scans.
    pub scanned: u64,
    /// Reads that found their key (should equal `reads`).
    pub hits: u64,
    /// Removes that evicted a value (should equal `removes`).
    pub evictions: u64,
    /// Wall-clock time of the measured loop.
    pub elapsed: Duration,
    /// Index label.
    pub label: String,
    /// Index size after the run (bytes).
    pub index_size_bytes: usize,
    /// Data size after the run (bytes).
    pub data_size_bytes: usize,
}

impl WorkloadReport {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

/// One index operation issued by the mix loop. The single- and
/// multi-threaded drivers share [`drive_mix`] and differ only in how
/// they execute these (exclusive `&mut` access vs. shared `&self`).
pub(crate) enum IndexOp<'a, K> {
    /// Point lookup.
    Contains(&'a K),
    /// Range scan of the given length.
    Scan(&'a K, usize),
    /// Insert (the executor produces the payload).
    Insert(K),
    /// Remove a key inserted earlier in the run.
    Remove(&'a K),
}

/// Outcome of an [`IndexOp`], mirrored variant-for-variant.
pub(crate) enum IndexOpResult {
    Hit(bool),
    Scanned(usize),
    Inserted(bool),
    Removed(bool),
}

/// The interleaved read/insert/remove mix loop shared by
/// [`run_workload`] and the multi-threaded driver: Zipf key selection
/// over a growing pool, cycle interleaving per [`WorkloadKind`], early
/// exit on insert-pool exhaustion. `exec` performs each operation
/// against the index; size accounting is left to the caller.
///
/// Remove-bearing mixes route freshly inserted keys into a thread-local
/// eviction stack instead of the Zipf pool: reads keep their always-hit
/// property and removes always evict, while the index size stays near
/// its initial value.
pub(crate) fn drive_mix<K: Copy>(
    existing_keys: &[K],
    insert_keys: &[K],
    spec: &WorkloadSpec,
    ops_budget: usize,
    seed: u64,
    label: String,
    mut exec: impl FnMut(IndexOp<'_, K>) -> IndexOpResult,
) -> WorkloadReport {
    assert!(!existing_keys.is_empty(), "need at least one existing key");
    let mut pool: Vec<K> = existing_keys.to_vec();
    pool.reserve(insert_keys.len());
    let mut zipf = ScrambledZipf::new(pool.len(), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let (reads_per_cycle, inserts_per_cycle, removes_per_cycle) = spec.kind.cycle();
    // Keys inserted by a remove-bearing mix, awaiting eviction (LIFO).
    let mut removable: Vec<K> = Vec::new();
    let mut report = WorkloadReport {
        ops: 0,
        reads: 0,
        inserts: 0,
        removes: 0,
        scanned: 0,
        hits: 0,
        evictions: 0,
        elapsed: Duration::ZERO,
        label,
        index_size_bytes: 0,
        data_size_bytes: 0,
    };
    let mut to_insert = insert_keys.iter();
    let start = Instant::now();
    'outer: while (report.ops as usize) < ops_budget {
        for _ in 0..reads_per_cycle {
            if report.ops as usize >= ops_budget {
                break;
            }
            let key = pool[zipf.next_rank()];
            if spec.kind.scans() {
                let len = rng.random_range(1..=spec.max_scan_len);
                let IndexOpResult::Scanned(visited) = exec(IndexOp::Scan(&key, len)) else {
                    unreachable!("Scan must yield Scanned");
                };
                report.scanned += visited as u64;
                report.hits += u64::from(visited > 0);
            } else {
                let IndexOpResult::Hit(hit) = exec(IndexOp::Contains(&key)) else {
                    unreachable!("Contains must yield Hit");
                };
                report.hits += u64::from(hit);
            }
            report.reads += 1;
            report.ops += 1;
        }
        for _ in 0..inserts_per_cycle {
            if report.ops as usize >= ops_budget {
                break;
            }
            let Some(&key) = to_insert.next() else {
                break 'outer; // insert pool exhausted
            };
            let IndexOpResult::Inserted(fresh) = exec(IndexOp::Insert(key)) else {
                unreachable!("Insert must yield Inserted");
            };
            if fresh {
                if removes_per_cycle > 0 {
                    removable.push(key);
                } else {
                    pool.push(key);
                }
            }
            report.inserts += 1;
            report.ops += 1;
        }
        for _ in 0..removes_per_cycle {
            if report.ops as usize >= ops_budget {
                break;
            }
            // Nothing to evict this cycle (a duplicate insert didn't
            // land): skip the remove; reads and inserts keep the run
            // progressing, and insert-pool exhaustion still ends it.
            let Some(key) = removable.pop() else {
                break;
            };
            let IndexOpResult::Removed(evicted) = exec(IndexOp::Remove(&key)) else {
                unreachable!("Remove must yield Removed");
            };
            report.evictions += u64::from(evicted);
            report.removes += 1;
            report.ops += 1;
        }
        if inserts_per_cycle > 0 {
            zipf.extend_to(pool.len());
        }
    }
    report.elapsed = start.elapsed();
    report
}

/// Run `spec` against `index`.
///
/// `existing_keys` must list the keys already loaded into the index (in
/// any order); lookups Zipf-select from this pool, which grows as
/// inserts drain `insert_keys` (except in remove-bearing mixes, where
/// inserted keys feed the eviction stack instead). `make_value`
/// produces the payload for an inserted key.
pub fn run_workload<K, V, I>(
    index: &mut I,
    existing_keys: &[K],
    insert_keys: &[K],
    spec: &WorkloadSpec,
    mut make_value: impl FnMut(&K) -> V,
) -> WorkloadReport
where
    K: Copy,
    I: IndexWrite<K, V> + ?Sized,
{
    let label = index.label();
    let mut report = drive_mix(
        existing_keys,
        insert_keys,
        spec,
        spec.ops,
        spec.seed,
        label,
        |op| match op {
            IndexOp::Contains(k) => IndexOpResult::Hit(index.contains(k)),
            IndexOp::Scan(k, len) => IndexOpResult::Scanned(index.scan_from(k, len, &mut |k, v| {
                core::hint::black_box((k, v));
            })),
            IndexOp::Insert(k) => {
                IndexOpResult::Inserted(index.insert(k, make_value(&k)).is_ok())
            }
            IndexOp::Remove(k) => IndexOpResult::Removed(index.remove(k).is_some()),
        },
    );
    report.index_size_bytes = index.index_size_bytes();
    report.data_size_bytes = index.data_size_bytes();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use alex_btree::BPlusTree;
    use alex_core::{AlexConfig, AlexIndex};

    fn setup() -> (Vec<u64>, Vec<u64>) {
        let existing: Vec<u64> = (0..5000u64).map(|k| k * 2).collect();
        let inserts: Vec<u64> = (0..5000u64).map(|k| k * 2 + 1).collect();
        (existing, inserts)
    }

    #[test]
    fn read_only_always_hits() {
        let (existing, _) = setup();
        let data: Vec<(u64, u64)> = existing.iter().map(|&k| (k, k)).collect();
        let mut idx = AlexIndex::bulk_load(&data, AlexConfig::ga_srmi(16));
        let spec = WorkloadSpec::new(WorkloadKind::ReadOnly, 2000);
        let report = run_workload(&mut idx, &existing, &[], &spec, |&k| k);
        assert_eq!(report.ops, 2000);
        assert_eq!(report.reads, 2000);
        assert_eq!(report.inserts, 0);
        assert_eq!(report.hits, 2000, "Zipf over existing keys must always hit");
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn read_heavy_interleaves_19_to_1() {
        let (existing, inserts) = setup();
        let data: Vec<(u64, u64)> = existing.iter().map(|&k| (k, k)).collect();
        let mut idx = BPlusTree::bulk_load(&data, 64, 64, 0.7);
        let spec = WorkloadSpec::new(WorkloadKind::ReadHeavy, 2000);
        let report = run_workload(&mut idx, &existing, &inserts, &spec, |&k| k);
        assert_eq!(report.ops, 2000);
        assert_eq!(report.inserts, 100, "5% of 2000");
        assert_eq!(report.reads, 1900);
        assert_eq!(report.hits, 1900);
        assert_eq!(idx.len(), 5100);
    }

    #[test]
    fn write_heavy_is_half_inserts() {
        let (existing, inserts) = setup();
        let data: Vec<(u64, u64)> = existing.iter().map(|&k| (k, k)).collect();
        let mut idx = AlexIndex::bulk_load(&data, AlexConfig::ga_armi());
        let spec = WorkloadSpec::new(WorkloadKind::WriteHeavy, 3000);
        let report = run_workload(&mut idx, &existing, &inserts, &spec, |&k| k);
        assert_eq!(report.inserts, 1500);
        assert_eq!(report.reads, 1500);
        assert_eq!(report.hits, 1500);
    }

    #[test]
    fn range_scan_visits_entries() {
        let (existing, inserts) = setup();
        let data: Vec<(u64, u64)> = existing.iter().map(|&k| (k, k)).collect();
        let mut idx = AlexIndex::bulk_load(&data, AlexConfig::ga_armi());
        let spec = WorkloadSpec::new(WorkloadKind::RangeScan, 1000);
        let report = run_workload(&mut idx, &existing, &inserts, &spec, |&k| k);
        assert!(report.scanned > 0);
        // Mean scan length ~50 per read.
        assert!(report.scanned as f64 / report.reads as f64 > 10.0);
    }

    #[test]
    fn remove_heavy_evicts_what_it_inserts() {
        let (existing, inserts) = setup();
        let data: Vec<(u64, u64)> = existing.iter().map(|&k| (k, k)).collect();
        let mut idx = AlexIndex::bulk_load(&data, AlexConfig::ga_armi());
        let spec = WorkloadSpec::new(WorkloadKind::RemoveHeavy, 4000);
        let report = run_workload(&mut idx, &existing, &inserts, &spec, |&k| k);
        assert_eq!(report.ops, 4000);
        assert_eq!(report.reads, 2000, "50% reads");
        assert_eq!(report.inserts, 1000, "25% inserts");
        assert_eq!(report.removes, 1000, "25% removes");
        assert_eq!(report.hits, report.reads, "reads never target evicted keys");
        assert_eq!(report.evictions, report.removes, "removes always evict");
        // LIFO eviction drains every insert: the index is back to its
        // initial contents.
        assert_eq!(idx.len(), existing.len());
    }

    #[test]
    fn remove_mix_tolerates_duplicate_inserts() {
        // The insert pool overlaps the loaded keys: duplicate inserts
        // leave nothing to evict that cycle. The run must skip those
        // removes and keep going, not abort.
        let existing: Vec<u64> = (0..200u64).collect();
        let inserts: Vec<u64> = (100..400u64).collect(); // first 100 are dups
        let data: Vec<(u64, u64)> = existing.iter().map(|&k| (k, k)).collect();
        let mut idx = AlexIndex::bulk_load(&data, AlexConfig::ga_armi());
        let spec = WorkloadSpec::new(WorkloadKind::RemoveHeavy, 600);
        let report = run_workload(&mut idx, &existing, &inserts, &spec, |&k| k);
        assert_eq!(report.ops, 600, "duplicate inserts must not end the run");
        assert!(report.removes < report.inserts, "dup cycles skip their remove");
        assert_eq!(report.evictions, report.removes);
    }

    #[test]
    fn run_stops_when_insert_pool_exhausted() {
        let existing: Vec<u64> = (0..100u64).collect();
        let inserts: Vec<u64> = (1000..1010u64).collect();
        let data: Vec<(u64, u64)> = existing.iter().map(|&k| (k, k)).collect();
        let mut idx = AlexIndex::bulk_load(&data, AlexConfig::ga_armi());
        let spec = WorkloadSpec::new(WorkloadKind::WriteHeavy, 10_000);
        let report = run_workload(&mut idx, &existing, &inserts, &spec, |&k| k);
        assert_eq!(report.inserts, 10);
        assert!(report.ops < 10_000);
    }

    #[test]
    fn inserted_keys_become_lookup_candidates() {
        let existing: Vec<u64> = (0..50u64).map(|k| k * 2).collect();
        let inserts: Vec<u64> = (0..5000u64).map(|k| 100 + k).collect();
        let data: Vec<(u64, u64)> = existing.iter().map(|&k| (k, k)).collect();
        let mut idx = AlexIndex::bulk_load(&data, AlexConfig::ga_armi());
        let spec = WorkloadSpec::new(WorkloadKind::WriteHeavy, 6000);
        let report = run_workload(&mut idx, &existing, &inserts, &spec, |&k| k);
        // Every read must hit even though most of the pool was inserted
        // during the run.
        assert_eq!(report.hits, report.reads);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in WorkloadKind::EXTENDED {
            assert_eq!(WorkloadKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(WorkloadKind::from_name("nonsense"), None);
    }
}
