//! Umbrella crate for the ALEX reproduction workspace.
//!
//! This crate re-exports the public surface of every workspace member so
//! that examples and integration tests can use a single dependency. The
//! actual implementations live in the `crates/` members:
//!
//! - [`alex_api`] — the index contract: the `IndexRead` /
//!   `IndexWrite` / `ConcurrentIndex` / `BatchOps` trait family, the
//!   `Entry`/`InsertError` types, the `LockedBTreeMap` reference
//!   baseline, and the `conformance_suite!` macro every backend
//!   instantiates.
//! - [`alex_core`] — the ALEX index itself (the paper's contribution).
//! - [`alex_pma`] — a standalone Packed Memory Array (Bender & Hu), the
//!   substrate behind ALEX's PMA node layout.
//! - [`alex_btree`] — an in-memory B+Tree baseline (STX-style).
//! - [`alex_learned_index`] — a reimplementation of the static Learned
//!   Index of Kraska et al. (two-level linear RMI over a dense sorted
//!   array with bounded binary search).
//! - [`alex_datasets`] — generators for the paper's four datasets plus
//!   Zipfian key selection.
//! - [`alex_workloads`] — YCSB-style workload drivers (single- and
//!   multi-threaded), generic over the [`alex_api`] traits.
//! - [`alex_sharded`] — the sharded concurrent front-end: the key space
//!   range-partitioned across `AlexIndex` shards behind per-shard
//!   reader-writer locks.
//! - [`alex_wal`] — durability for the epoch index: an LSN'd
//!   write-ahead log with group commit, copy-on-write leaf snapshots
//!   in slotted pages, and crash recovery (`DurableAlex`).
//! - [`alex_server`] — the serving front-end: a framed binary
//!   request/response protocol, shard-owning worker threads behind
//!   bounded queues that coalesce point ops into sorted batch runs,
//!   and an open-/closed-loop load generator with a log-bucketed
//!   latency histogram (p50/p99/p999).

pub use alex_api;
pub use alex_btree;
pub use alex_core;
pub use alex_datasets;
pub use alex_learned_index;
pub use alex_pma;
pub use alex_server;
pub use alex_sharded;
pub use alex_wal;
pub use alex_workloads;
